//! The two-socket server and the simulation engine.

use crate::assignment::Assignment;
use crate::chip::{ChipSim, SocketTick, TickPrelude};
use crate::config::ServerConfig;
use crate::error::SimError;
use crate::history::{History, SimEvent, SimEventKind};
use crate::measure::{Accumulator, RunSummary};
use crate::solve::SolveBatch;
use crate::telemetry;
use p7_control::{
    FirmwareController, GuardbandMode, SafetySupervisor, SupervisorConfig, SupervisorEvent,
    WindowObservation,
};
use p7_faults::{DeadCpm, FaultKind, FaultPlan, SensorBias, SocketWindow, StuckCpm, FOREVER};
use p7_obs::trace;
use p7_pdn::{Rail, Vrm};
use p7_sensors::{Amester, CpmReading};
use p7_types::{
    Amps, CoreId, CpmId, Seconds, SocketId, Volts, CORES_PER_SOCKET, CPMS_PER_CORE,
    CPMS_PER_SOCKET, NUM_SOCKETS,
};

/// The firmware/telemetry window length: 32 ms.
pub const WINDOW: Seconds = Seconds(0.032);

/// The pre-solve state of one window, produced by
/// [`Simulation::begin_tick`] and consumed by the solve strategy and
/// [`Simulation::settle_tick`]. Fixed-size, so splitting a tick in half
/// keeps the warm path allocation-free.
#[derive(Debug, Clone)]
pub(crate) struct TickSetup {
    /// This window's fault effects, when a plan is installed.
    fault_windows: Option<[SocketWindow; NUM_SOCKETS]>,
    /// Rail snapshots taken before the solve.
    rails: [Rail; NUM_SOCKETS],
    /// Effective per-socket guardband modes (after supervisor degrade).
    modes: [GuardbandMode; NUM_SOCKETS],
    /// Injected droop-storm scales, when active this window.
    droop_scales: [Option<(f64, f64)>; NUM_SOCKETS],
}

/// A running simulation of the Power 720 server.
///
/// # Examples
///
/// ```
/// use p7_control::GuardbandMode;
/// use p7_sim::{Assignment, ServerConfig, Simulation};
/// use p7_workloads::Catalog;
///
/// let cfg = ServerConfig::power7plus(42);
/// let w = Catalog::power7plus().get("raytrace").unwrap().clone();
/// let a = Assignment::single_socket(&w, 2)?;
/// let mut sim = Simulation::new(cfg, a, GuardbandMode::Undervolt)?;
/// let summary = sim.run(40, 15);
/// assert!(summary.socket0().undervolt.millivolts() > 0.0);
/// # Ok::<(), p7_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    config: ServerConfig,
    assignment: Assignment,
    mode: GuardbandMode,
    vrm: Vrm,
    chips: Vec<ChipSim>,
    firmware: FirmwareController,
    amesters: Vec<Amester>,
    time: Seconds,
    /// Window counter driving the fault plan; replays from 0 on reset.
    tick_index: usize,
    /// Installed fault plan, if any. Survives [`Simulation::reset`] so a
    /// reused scratch simulation replays the same faulted trajectory.
    faults: Option<FaultPlan>,
    /// Per-socket CPMs currently forced by the plan (bit = flat index),
    /// so releases clear exactly what the plan set and nothing else.
    plan_cpm_masks: [u64; NUM_SOCKETS],
    /// Per-socket safety supervisors, when enabled.
    supervisors: Option<Vec<SafetySupervisor>>,
    /// Margin violations observed while monitoring is active.
    margin_violations: u64,
    /// Fault/supervisor events not yet drained into a [`History`].
    pending_events: Vec<SimEvent>,
    /// Routes every solve through the retained scalar loop — the
    /// differential harness's oracle path.
    #[cfg(feature = "scalar-oracle")]
    use_scalar_oracle: bool,
}

impl Simulation {
    /// Builds a simulation; rails start at the static nominal voltage.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the configuration or assignment is
    /// invalid.
    pub fn new(
        config: ServerConfig,
        assignment: Assignment,
        mode: GuardbandMode,
    ) -> Result<Self, SimError> {
        config.validate()?;
        let vrm = Vrm::uniform(config.nominal_voltage(), config.pdn.vrm_loadline)?;
        let chips = SocketId::all()
            .map(|s| ChipSim::new(&config, &assignment, s))
            .collect::<Result<Vec<_>, _>>()?;
        let firmware = FirmwareController::new(config.target_frequency, config.policy.clone())?;
        Ok(Simulation {
            config,
            assignment,
            mode,
            vrm,
            chips,
            firmware,
            amesters: (0..NUM_SOCKETS).map(|_| Amester::new()).collect(),
            time: Seconds(0.0),
            tick_index: 0,
            faults: None,
            plan_cpm_masks: [0; NUM_SOCKETS],
            supervisors: None,
            margin_violations: 0,
            pending_events: Vec::new(),
            #[cfg(feature = "scalar-oracle")]
            use_scalar_oracle: false,
        })
    }

    /// Routes every solve in this simulation through the retained scalar
    /// loop instead of the batched SoA kernel — the oracle side of the
    /// differential equivalence harness.
    ///
    /// Deliberately survives [`Simulation::reset`], so an oracle
    /// simulation can be reused across runs like any other.
    #[cfg(feature = "scalar-oracle")]
    pub fn set_scalar_oracle(&mut self, enabled: bool) {
        self.use_scalar_oracle = enabled;
        for chip in &mut self.chips {
            chip.set_scalar_oracle(enabled);
        }
    }

    /// Rewinds the simulation to its exactly-as-constructed state under a
    /// (possibly different) guardband mode, without rebuilding the chips.
    ///
    /// Rails return to the static nominal set point with sensor biases
    /// cleared, chips re-derive all mutable state (noise streams, CPM
    /// calibration, stuck-at faults, traces, clocks, thermal and warm-solve
    /// state), telemetry is cleared (capacity kept) and time restarts at
    /// zero. A reset simulation produces bitwise-identical results to a
    /// freshly built one, which is what lets sweep workers reuse one
    /// construction across the three guardband modes of an assignment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when chip re-derivation fails (it cannot for a
    /// config that already built this simulation).
    pub fn reset(&mut self, mode: GuardbandMode) -> Result<(), SimError> {
        self.mode = mode;
        let nominal = self.config.nominal_voltage();
        for socket in SocketId::all() {
            let rail = self.vrm.rail_mut(socket);
            rail.set_set_point(nominal);
            rail.inject_sensor_bias(Amps::ZERO);
        }
        let config = &self.config;
        let assignment = &self.assignment;
        for chip in &mut self.chips {
            chip.reset(config, assignment)?;
        }
        for amester in &mut self.amesters {
            amester.clear();
        }
        if let Some(sups) = &mut self.supervisors {
            for sup in sups {
                sup.reset();
            }
        }
        self.time = Seconds(0.0);
        self.tick_index = 0;
        self.plan_cpm_masks = [0; NUM_SOCKETS];
        self.margin_violations = 0;
        self.pending_events.clear();
        Ok(())
    }

    /// Reserves telemetry capacity for `windows` upcoming windows so the
    /// per-tick record path never reallocates.
    pub fn reserve_telemetry(&mut self, windows: usize) {
        for amester in &mut self.amesters {
            amester.reserve(windows);
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The operating mode.
    #[must_use]
    pub fn mode(&self) -> GuardbandMode {
        self.mode
    }

    /// The assignment being executed.
    #[must_use]
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The telemetry recorder of one socket.
    #[must_use]
    pub fn amester(&self, socket: SocketId) -> &Amester {
        &self.amesters[socket.index()]
    }

    /// Injects a permanent fault into one CPM: `Some(reading)` sticks
    /// the monitor at that tap, `None` kills it outright (a dead sensor
    /// reads tap 0, which engages the hardware fail-safe).
    ///
    /// Routed through the same [`FaultPlan`] effect path as planned
    /// campaigns, so ad-hoc and planned injection share one code path.
    pub fn inject_cpm_fault(&mut self, socket: SocketId, cpm: CpmId, reading: Option<CpmReading>) {
        let core = cpm.core().index();
        let slot = cpm.flat_index() % CPMS_PER_CORE;
        let kind = match reading {
            Some(r) => FaultKind::StuckCpm(StuckCpm {
                socket: socket.index(),
                core,
                slot,
                reading: r.value(),
            }),
            None => FaultKind::DeadCpm(DeadCpm {
                socket: socket.index(),
                core,
                slot,
            }),
        };
        self.inject_now(kind);
    }

    /// Biases one rail's current sensor (failure-injection tests).
    pub fn inject_rail_sensor_bias(&mut self, socket: SocketId, bias: Amps) {
        self.inject_now(FaultKind::SensorBias(SensorBias {
            socket: socket.index(),
            amps: bias.0,
        }));
    }

    /// Applies an ad-hoc fault immediately and permanently by resolving
    /// it through the plan machinery — the single application path.
    fn inject_now(&mut self, kind: FaultKind) {
        let socket = kind.socket();
        let plan = FaultPlan::new("adhoc", 0).event(0, FOREVER, kind);
        let window = plan.socket_window(0, socket);
        Self::apply_socket_window(&mut self.chips, &mut self.vrm, socket, &window, 0);
    }

    /// Clears every injected sensor fault: all banks' stuck-at faults
    /// (delegating to `CpmBank::clear_stuck_faults`), rail current-sensor
    /// biases, and any installed fault plan.
    pub fn clear_faults(&mut self) {
        for chip in &mut self.chips {
            chip.bank_mut().clear_stuck_faults();
        }
        for socket in SocketId::all() {
            self.vrm.rail_mut(socket).inject_sensor_bias(Amps::ZERO);
        }
        self.faults = None;
        self.plan_cpm_masks = [0; NUM_SOCKETS];
    }

    /// Installs a fault plan. Effects replay from window 0 of the next
    /// run: the plan survives [`Simulation::reset`], so reused scratch
    /// simulations reproduce the faulted trajectory bitwise.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Resilience`] when the plan fails validation.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), SimError> {
        plan.validate()
            .map_err(|reason| SimError::Resilience { reason })?;
        self.faults = Some(plan);
        Ok(())
    }

    /// The installed fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Enables the per-socket safety supervisors. Also turns on margin
    /// violation monitoring.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Resilience`] when the thresholds are invalid.
    pub fn enable_supervisor(&mut self, config: SupervisorConfig) -> Result<(), SimError> {
        config
            .validate()
            .map_err(|reason| SimError::Resilience { reason })?;
        self.supervisors = Some(
            (0..NUM_SOCKETS)
                .map(|i| SafetySupervisor::with_socket(config, i as u8))
                .collect(),
        );
        Ok(())
    }

    /// One socket's safety supervisor, when enabled.
    #[must_use]
    pub fn supervisor(&self, socket: SocketId) -> Option<&SafetySupervisor> {
        self.supervisors.as_ref().map(|s| &s[socket.index()])
    }

    /// Margin violations observed so far: windows in which a powered-on
    /// core's voltage, less the window's worst droop, fell below the
    /// critical-path requirement at its clock. Counted only while a
    /// fault plan or supervisor is active (the plain hot path stays
    /// check-free).
    #[must_use]
    pub fn margin_violations(&self) -> u64 {
        self.margin_violations
    }

    /// Drains the fault/supervisor events accumulated since the last
    /// drain (or reset), in occurrence order.
    ///
    /// Allocation-conscious callers that harvest every window should use
    /// [`Simulation::take_events_into`] instead: this convenience form
    /// hands the internal buffer itself to the caller, so the *next*
    /// event pushed must grow a fresh one from zero capacity.
    pub fn take_events(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.pending_events)
    }

    /// Drains the accumulated fault/supervisor events into `buf`,
    /// appending in occurrence order. The internal buffer keeps its
    /// capacity, so harvesting once per window on an instrumented run
    /// performs zero allocations once both buffers are warm.
    pub fn take_events_into(&mut self, buf: &mut Vec<SimEvent>) {
        buf.append(&mut self.pending_events);
    }

    /// The guardband mode socket `i` actually runs this window, after
    /// any supervisor degradation.
    fn effective_mode(&self, socket: usize) -> GuardbandMode {
        match &self.supervisors {
            Some(sups) => sups[socket].effective_mode(self.mode),
            None => self.mode,
        }
    }

    /// Applies one socket's fault-window effects to the live hardware.
    /// `prev_mask` holds the CPMs forced by the previous application;
    /// monitors the window released are cleared, monitors it still
    /// forces are re-stuck, and everything else (ad-hoc injections
    /// included) is left alone. Returns the new mask.
    fn apply_socket_window(
        chips: &mut [ChipSim],
        vrm: &mut Vrm,
        socket: usize,
        window: &SocketWindow,
        prev_mask: u64,
    ) -> u64 {
        let mask = window.cpm_mask();
        let released = prev_mask & !mask;
        if mask != 0 || released != 0 {
            let bank = chips[socket].bank_mut();
            for flat in 0..CPMS_PER_SOCKET {
                let bit = 1u64 << flat;
                if bit & (mask | released) == 0 {
                    continue;
                }
                let core = CoreId::new((flat / CPMS_PER_CORE) as u8).expect("core in range");
                let cpm = CpmId::new(core, (flat % CPMS_PER_CORE) as u8).expect("slot in range");
                if bit & mask != 0 {
                    let tap = window.cpm[flat].expect("mask bit implies an override");
                    let reading = CpmReading::new(tap).expect("plans are validated");
                    bank.monitor_mut(cpm).set_stuck_at(Some(reading));
                } else {
                    bank.monitor_mut(cpm).set_stuck_at(None);
                }
            }
        }
        if window.rail_sensor_touched {
            let id = SocketId::new(socket as u8).expect("socket in range");
            vrm.rail_mut(id)
                .inject_sensor_bias(Amps(window.sensor_error_amps));
        }
        mask
    }

    /// Applies the plan's effects for window `tick` and records timeline
    /// transitions.
    fn apply_fault_windows(&mut self, tick: usize, windows: &[SocketWindow; NUM_SOCKETS]) {
        for (socket, window) in windows.iter().enumerate() {
            self.plan_cpm_masks[socket] = Self::apply_socket_window(
                &mut self.chips,
                &mut self.vrm,
                socket,
                window,
                self.plan_cpm_masks[socket],
            );
        }
        if let Some(plan) = &self.faults {
            for event in &plan.events {
                if tick == event.onset {
                    self.pending_events.push(SimEvent {
                        tick,
                        socket: event.kind.socket(),
                        kind: SimEventKind::FaultStarted(event.kind.label().to_string()),
                    });
                } else if event.ends_at(tick) {
                    self.pending_events.push(SimEvent {
                        tick,
                        socket: event.kind.socket(),
                        kind: SimEventKind::FaultEnded(event.kind.label().to_string()),
                    });
                }
            }
        }
    }

    /// End-of-window monitoring: counts margin violations and feeds the
    /// supervisors, applying degradation (static mode, rail snapped to
    /// nominal) from the next window on.
    fn monitor_window(
        &mut self,
        tick: usize,
        ticks: &[SocketTick; NUM_SOCKETS],
        telemetry_lost: [bool; NUM_SOCKETS],
    ) {
        for i in 0..NUM_SOCKETS {
            let t = &ticks[i];
            let mut violations = 0u64;
            for c in 0..CORES_PER_SOCKET {
                if !self.chips[i].core_is_on(c) {
                    continue;
                }
                let worst = t.breakdown[c].typical_didt + t.breakdown[c].worst_didt;
                let required = self.config.curve.v_circuit(t.core_freqs[c]);
                if t.core_voltages[c] - worst < required - Volts(1e-9) {
                    violations += 1;
                }
            }
            self.margin_violations += violations;
            telemetry::margin_violations().add(violations);

            let Some(sups) = self.supervisors.as_mut() else {
                continue;
            };
            let sup = &mut sups[i];
            sup.note_margin_violations(violations);
            let ran_adaptive = sup.allows_adaptive() && self.mode.is_adaptive();
            let observation = WindowObservation {
                sample: std::array::from_fn(|k| t.cpm_sample[k].value()),
                sticky: std::array::from_fn(|k| t.cpm_sticky[k].value()),
                core_on: std::array::from_fn(|c| self.chips[i].core_is_on(c)),
                telemetry_fresh: !telemetry_lost[i],
                ran_adaptive,
            };
            match sup.observe(&observation) {
                Some(SupervisorEvent::Degraded(issue)) => {
                    // Emergency exit from the shaved guardband: the full
                    // static margin at the nominal set point.
                    let id = SocketId::new(i as u8).expect("socket in range");
                    let nominal = self.config.nominal_voltage();
                    self.vrm.rail_mut(id).set_set_point(nominal);
                    self.pending_events.push(SimEvent {
                        tick,
                        socket: i,
                        kind: SimEventKind::Degraded(format!("{issue:?}")),
                    });
                }
                Some(SupervisorEvent::Rearmed) => {
                    self.pending_events.push(SimEvent {
                        tick,
                        socket: i,
                        kind: SimEventKind::Rearmed,
                    });
                }
                None => {}
            }
        }
    }

    /// Advances the server by one 32 ms window and returns each socket's
    /// observations.
    ///
    /// This is the warm hot path: after telemetry capacity has been
    /// reserved (see [`Simulation::reserve_telemetry`], done automatically
    /// by [`Simulation::run`]), a tick performs zero heap allocations —
    /// the returned ticks, the CPM readouts and the rail snapshot are all
    /// fixed-size values.
    pub fn tick(&mut self) -> [SocketTick; NUM_SOCKETS] {
        let span = trace::span("tick", self.tick_index as u64);
        let _ctx = span.push();
        let setup = self.begin_tick();
        let ticks = self.solve_sockets(&setup.rails, setup.modes, setup.droop_scales);
        self.settle_tick(&setup, ticks)
    }

    /// The pre-solve half of a window: fault effects applied, rails
    /// snapshotted, effective modes and droop scales resolved. Split out of
    /// [`Simulation::tick`] so the group ticker in [`crate::group`] can
    /// interleave many servers' windows through one wide [`SolveBatch`].
    /// Does not open the `"tick"` trace span — the caller owns it so the
    /// span brackets whatever solve strategy is used.
    pub(crate) fn begin_tick(&mut self) -> TickSetup {
        let tick_index = self.tick_index;
        telemetry::sim_ticks().inc();
        // Fault effects for this window, resolved purely from the plan
        // and the window index so resets and reruns replay them bitwise.
        let fault_windows: Option<[SocketWindow; NUM_SOCKETS]> = self
            .faults
            .as_ref()
            .map(|plan| std::array::from_fn(|i| plan.socket_window(tick_index, i)));
        if let Some(windows) = &fault_windows {
            self.apply_fault_windows(tick_index, windows);
        }

        let rails: [Rail; NUM_SOCKETS] = std::array::from_fn(|i| {
            let socket = SocketId::new(i as u8).expect("socket in range");
            // Rail is a small Copy value: snapshot it instead of cloning
            // through an allocation-visible path.
            *self.vrm.rail(socket)
        });
        // The supervisor may have degraded a socket to static.
        let modes: [GuardbandMode; NUM_SOCKETS] = std::array::from_fn(|i| self.effective_mode(i));
        let droop_scales: [Option<(f64, f64)>; NUM_SOCKETS] = std::array::from_fn(|i| {
            fault_windows.as_ref().and_then(|w| {
                let fw = &w[i];
                (fw.droop_typical_scale != 1.0 || fw.droop_worst_scale != 1.0)
                    .then_some((fw.droop_typical_scale, fw.droop_worst_scale))
            })
        });
        TickSetup {
            fault_windows,
            rails,
            modes,
            droop_scales,
        }
    }

    /// The post-solve half of a window: telemetry recording, the firmware
    /// undervolt servo, safety monitoring, and the time/window advance.
    /// `ticks` must be the solutions for the setup this window's
    /// [`Simulation::begin_tick`] returned.
    pub(crate) fn settle_tick(
        &mut self,
        setup: &TickSetup,
        ticks: [SocketTick; NUM_SOCKETS],
    ) -> [SocketTick; NUM_SOCKETS] {
        let tick_index = self.tick_index;
        let fault_windows = &setup.fault_windows;
        for i in 0..NUM_SOCKETS {
            // Telemetry mirrors what AMESTER would record; a lost window
            // simply never arrives.
            let lost = fault_windows.as_ref().is_some_and(|w| w[i].telemetry_lost);
            if !lost {
                self.amesters[i]
                    .record(self.time, ticks[i].cpm_sample, ticks[i].cpm_sticky)
                    .expect("window cadence respects the 32 ms limit");
            }
        }

        // Firmware: in undervolting mode each socket's rail chases its
        // slowest powered-on core; rails of fully gated sockets park at
        // the floor. A missed 32 ms window holds the set point instead.
        for socket in SocketId::all() {
            let i = socket.index();
            if self.effective_mode(i) != GuardbandMode::Undervolt {
                continue;
            }
            if fault_windows.as_ref().is_some_and(|w| w[i].firmware_missed) {
                continue;
            }
            let current_set = self.vrm.rail(socket).set_point();
            // The firmware is conservative: it servoes the worst
            // momentary frequency of the window (droops plus the
            // rail's load-transient reserve) to the target.
            let next = match ticks[i].sticky_min_freq {
                Some(freq) => self
                    .firmware
                    .adjust_voltage(current_set, freq, &self.config.curve),
                None => self.firmware.voltage_floor(&self.config.curve),
            };
            self.vrm.rail_mut(socket).set_set_point(next);
        }

        // Safety monitoring runs only when faults or supervisors are in
        // play, keeping the plain hot path check-free.
        if self.faults.is_some() || self.supervisors.is_some() {
            let telemetry_lost: [bool; NUM_SOCKETS] = std::array::from_fn(|i| {
                fault_windows.as_ref().is_some_and(|w| w[i].telemetry_lost)
            });
            self.monitor_window(tick_index, &ticks, telemetry_lost);
        }

        self.time += WINDOW;
        self.tick_index += 1;
        ticks
    }

    /// The window index the next [`Simulation::tick`] will run (also the
    /// `"tick"` span key the group ticker uses).
    pub(crate) fn next_tick_index(&self) -> usize {
        self.tick_index
    }

    /// Whether this simulation routes solves through the scalar oracle —
    /// such servers keep their scalar path even inside a group tick.
    #[cfg(feature = "scalar-oracle")]
    pub(crate) fn wants_scalar_oracle(&self) -> bool {
        self.use_scalar_oracle
    }

    /// Without the `scalar-oracle` feature no simulation is an oracle.
    #[cfg(not(feature = "scalar-oracle"))]
    pub(crate) fn wants_scalar_oracle(&self) -> bool {
        false
    }

    /// Step 1–2 of every socket's window (activity draw + DPLL settle),
    /// for a caller that batches the solves itself.
    pub(crate) fn begin_windows(&mut self, setup: &TickSetup) -> [TickPrelude; NUM_SOCKETS] {
        std::array::from_fn(|i| self.chips[i].begin_window(setup.modes[i]))
    }

    /// One socket's solver lane inputs for this window.
    pub(crate) fn lane_spec<'a>(
        &'a self,
        socket: usize,
        setup: &'a TickSetup,
        prelude: &'a TickPrelude,
    ) -> crate::solve::LaneSpec<'a> {
        self.chips[socket].lane_spec(&setup.rails[socket], prelude)
    }

    /// One socket's window solved on the retained scalar oracle path.
    #[cfg(feature = "scalar-oracle")]
    pub(crate) fn solve_scalar_socket(
        &self,
        socket: usize,
        setup: &TickSetup,
        prelude: &TickPrelude,
    ) -> crate::solve::LaneSolution {
        self.chips[socket].solve_scalar(&setup.rails[socket], prelude)
    }

    /// Steps 4–8 of every socket's window from externally solved lanes.
    pub(crate) fn finish_windows(
        &mut self,
        setup: &TickSetup,
        preludes: &[TickPrelude; NUM_SOCKETS],
        solutions: &[crate::solve::LaneSolution; NUM_SOCKETS],
    ) -> [SocketTick; NUM_SOCKETS] {
        std::array::from_fn(|i| {
            self.chips[i].finish_window(
                &setup.rails[i],
                setup.modes[i],
                WINDOW,
                setup.droop_scales[i],
                &preludes[i],
                &solutions[i],
            )
        })
    }

    /// Solves every socket's window as one [`SolveBatch`]: both sockets'
    /// electrical fixed points advance in lock-step lanes of the SoA
    /// kernel, then each chip finishes its window (noise, CPMs, control,
    /// thermal) from its lane's solution. Lanes are independent, so this
    /// is bitwise identical to ticking the sockets one at a time.
    fn solve_sockets(
        &mut self,
        rails: &[Rail; NUM_SOCKETS],
        modes: [GuardbandMode; NUM_SOCKETS],
        droop_scales: [Option<(f64, f64)>; NUM_SOCKETS],
    ) -> [SocketTick; NUM_SOCKETS] {
        #[cfg(feature = "scalar-oracle")]
        if self.use_scalar_oracle {
            return std::array::from_fn(|i| {
                self.chips[i].tick_scaled(&rails[i], modes[i], WINDOW, droop_scales[i])
            });
        }
        let preludes: [TickPrelude; NUM_SOCKETS] =
            std::array::from_fn(|i| self.chips[i].begin_window(modes[i]));
        let mut batch = SolveBatch::<NUM_SOCKETS>::new();
        for i in 0..NUM_SOCKETS {
            batch.load(i, &self.chips[i].lane_spec(&rails[i], &preludes[i]));
        }
        batch.solve();
        std::array::from_fn(|i| {
            self.chips[i].finish_window(
                &rails[i],
                modes[i],
                WINDOW,
                droop_scales[i],
                &preludes[i],
                &batch.lane(i),
            )
        })
    }

    /// Like [`Simulation::run`] but also records the full per-window time
    /// series (warm-up included), for transient studies.
    ///
    /// # Panics
    ///
    /// Panics if `measure` is zero.
    pub fn run_with_history(&mut self, measure: usize, warmup: usize) -> (RunSummary, History) {
        assert!(measure > 0, "must measure at least one window");
        self.reserve_telemetry(measure + warmup);
        let mut history = History::with_capacity(measure + warmup);
        let mut tick_index = 0usize;
        for _ in 0..warmup {
            let time = self.time;
            let ticks = self.tick();
            history.push(tick_index, time, &ticks);
            tick_index += 1;
        }
        let mut acc = Accumulator::new(self.config.nominal_voltage(), self.running_mask());
        for _ in 0..measure {
            let time = self.time;
            let ticks = self.tick();
            history.push(tick_index, time, &ticks);
            tick_index += 1;
            acc.add(&ticks);
        }
        for event in self.pending_events.drain(..) {
            history.push_event(event);
        }
        (
            acc.finish().expect("measure > 0 windows were accumulated"),
            history,
        )
    }

    pub(crate) fn running_mask(&self) -> [[bool; CORES_PER_SOCKET]; NUM_SOCKETS] {
        let mut mask = [[false; CORES_PER_SOCKET]; NUM_SOCKETS];
        for socket in SocketId::all() {
            for core in CoreId::all() {
                mask[socket.index()][core.index()] =
                    self.assignment.thread_at(socket, core).is_some();
            }
        }
        mask
    }

    /// Runs `warmup + measure` windows, discarding the warm-up, and
    /// returns the averaged summary.
    ///
    /// # Panics
    ///
    /// Panics if `measure` is zero.
    pub fn run(&mut self, measure: usize, warmup: usize) -> RunSummary {
        assert!(measure > 0, "must measure at least one window");
        self.reserve_telemetry(measure + warmup);
        for _ in 0..warmup {
            self.tick();
        }
        let mut acc = Accumulator::new(self.config.nominal_voltage(), self.running_mask());
        for _ in 0..measure {
            let ticks = self.tick();
            acc.add(&ticks);
        }
        acc.finish().expect("measure > 0 windows were accumulated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_types::Volts;
    use p7_workloads::Catalog;

    fn workload(name: &str) -> p7_workloads::WorkloadProfile {
        Catalog::power7plus().get(name).unwrap().clone()
    }

    fn run(
        name: &str,
        k: usize,
        mode: GuardbandMode,
        build: fn(&p7_workloads::WorkloadProfile, usize) -> Result<Assignment, SimError>,
    ) -> RunSummary {
        let cfg = ServerConfig::power7plus(42);
        let a = build(&workload(name), k).unwrap();
        let mut sim = Simulation::new(cfg, a, mode).unwrap();
        sim.run(40, 20)
    }

    #[test]
    fn undervolt_saves_power_vs_static() {
        let static_run = run(
            "raytrace",
            1,
            GuardbandMode::StaticGuardband,
            Assignment::single_socket,
        );
        let uv_run = run(
            "raytrace",
            1,
            GuardbandMode::Undervolt,
            Assignment::single_socket,
        );
        let saving = (static_run.socket0().avg_power.0 - uv_run.socket0().avg_power.0)
            / static_run.socket0().avg_power.0
            * 100.0;
        // Fig. 3a: ~13 % at one active core.
        assert!((8.0..18.0).contains(&saving), "1-core saving {saving}%");
    }

    #[test]
    fn undervolt_benefit_shrinks_with_core_count() {
        let saving_at = |k: usize| {
            let s = run(
                "raytrace",
                k,
                GuardbandMode::StaticGuardband,
                Assignment::single_socket,
            );
            let u = run(
                "raytrace",
                k,
                GuardbandMode::Undervolt,
                Assignment::single_socket,
            );
            (s.socket0().avg_power.0 - u.socket0().avg_power.0) / s.socket0().avg_power.0 * 100.0
        };
        let one = saving_at(1);
        let eight = saving_at(8);
        assert!(one > eight + 3.0, "1-core {one}% vs 8-core {eight}%");
        assert!(eight > 0.5, "8-core saving should stay positive: {eight}%");
    }

    #[test]
    fn overclock_boost_shrinks_with_core_count() {
        let boost_at = |k: usize| {
            let o = run(
                "lu_cb",
                k,
                GuardbandMode::Overclock,
                Assignment::single_socket,
            );
            (o.avg_running_freq.0 - 4200.0) / 4200.0 * 100.0
        };
        let one = boost_at(1);
        let eight = boost_at(8);
        // Fig. 4a: ~10 % at one core, ~4 % at eight.
        assert!((6.0..13.0).contains(&one), "1-core boost {one}%");
        assert!((1.0..7.0).contains(&eight), "8-core boost {eight}%");
        assert!(one > eight);
    }

    #[test]
    fn undervolt_floor_is_never_breached() {
        let cfg = ServerConfig::power7plus(3);
        let a = Assignment::single_socket(&workload("mcf"), 1).unwrap();
        let fw = FirmwareController::new(cfg.target_frequency, cfg.policy.clone()).unwrap();
        let floor = fw.voltage_floor(&cfg.curve);
        let mut sim = Simulation::new(cfg, a, GuardbandMode::Undervolt).unwrap();
        let s = sim.run(40, 20);
        assert!(s.socket0().avg_set_point >= floor - Volts(1e-9));
    }

    #[test]
    fn borrowing_beats_consolidation_at_high_load() {
        // Fig. 12b: distributing raytrace saves total power at 8 threads.
        let cons = run(
            "raytrace",
            8,
            GuardbandMode::Undervolt,
            Assignment::consolidated,
        );
        let borr = run(
            "raytrace",
            8,
            GuardbandMode::Undervolt,
            Assignment::borrowed,
        );
        let saving = (cons.total_power.0 - borr.total_power.0) / cons.total_power.0 * 100.0;
        assert!(saving > 2.0, "borrowing saving {saving}%");
    }

    #[test]
    fn telemetry_is_recorded_each_window() {
        let cfg = ServerConfig::power7plus(42);
        let a = Assignment::single_socket(&workload("vips"), 2).unwrap();
        let mut sim = Simulation::new(cfg, a, GuardbandMode::Overclock).unwrap();
        sim.run(10, 5);
        let s0 = SocketId::new(0).unwrap();
        assert_eq!(sim.amester(s0).windows().len(), 15);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(
            "swaptions",
            4,
            GuardbandMode::Undervolt,
            Assignment::single_socket,
        );
        let b = run(
            "swaptions",
            4,
            GuardbandMode::Undervolt,
            Assignment::single_socket,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn reset_matches_fresh_simulation_bitwise() {
        let cfg = ServerConfig::power7plus(42);
        let a = Assignment::single_socket(&workload("raytrace"), 4).unwrap();
        let mut reused =
            Simulation::new(cfg.clone(), a.clone(), GuardbandMode::StaticGuardband).unwrap();
        // Dirty everything a run can touch, including injected faults.
        let _ = reused.run(12, 6);
        let s0 = SocketId::new(0).unwrap();
        reused.inject_cpm_fault(
            s0,
            CpmId::new(CoreId::new(2).unwrap(), 1).unwrap(),
            CpmReading::new(0),
        );
        reused.inject_rail_sensor_bias(s0, Amps(7.5));

        for mode in [
            GuardbandMode::StaticGuardband,
            GuardbandMode::Undervolt,
            GuardbandMode::Overclock,
        ] {
            reused.reset(mode).unwrap();
            let summary = reused.run(12, 6);
            let mut fresh = Simulation::new(cfg.clone(), a.clone(), mode).unwrap();
            assert_eq!(summary, fresh.run(12, 6), "mode {mode:?}");
        }
    }

    #[test]
    fn take_events_into_drains_in_place() {
        let cfg = ServerConfig::power7plus(42);
        let a = Assignment::single_socket(&workload("vips"), 2).unwrap();
        let mut sim = Simulation::new(cfg, a, GuardbandMode::StaticGuardband).unwrap();
        let plan = FaultPlan::new("adhoc", 0).event(
            1,
            FOREVER,
            FaultKind::DeadCpm(DeadCpm {
                socket: 0,
                core: 1,
                slot: 0,
            }),
        );
        sim.set_fault_plan(plan).unwrap();
        sim.run(4, 0);
        let mut buf = Vec::with_capacity(4);
        sim.take_events_into(&mut buf);
        assert_eq!(buf.len(), 1);
        assert!(matches!(buf[0].kind, SimEventKind::FaultStarted(_)));
        // The queue was drained in place: a second harvest appends
        // nothing, and the convenience accessor agrees it is empty.
        sim.take_events_into(&mut buf);
        assert_eq!(buf.len(), 1);
        assert!(sim.take_events().is_empty());
    }

    #[test]
    fn cpm_fault_injection_reaches_telemetry() {
        let cfg = ServerConfig::power7plus(42);
        let a = Assignment::single_socket(&workload("vips"), 2).unwrap();
        let mut sim = Simulation::new(cfg, a, GuardbandMode::StaticGuardband).unwrap();
        let s0 = SocketId::new(0).unwrap();
        let cpm = CpmId::new(CoreId::new(3).unwrap(), 2).unwrap();
        sim.inject_cpm_fault(s0, cpm, CpmReading::new(0));
        sim.run(5, 0);
        let latest = sim.amester(s0).latest().unwrap();
        assert_eq!(latest.sample_of(cpm).value(), 0);
    }
}
