//! Per-socket chip model: the electrical solve and the control step.

use crate::assignment::Assignment;
use crate::config::ServerConfig;
use crate::error::SimError;
use crate::solve::{LaneSolution, LaneSpec, SolveBatch};
#[cfg(feature = "scalar-oracle")]
use crate::solve::{MAX_SOLVE_ITERATIONS, SOLVE_TOLERANCE};
use p7_control::{Dpll, GuardbandMode, VoltFreqCurve};
use p7_pdn::{DidtModel, DropBreakdown, PdnGrid, Rail};
use p7_power::{ChipPowerModel, CorePowerState, ThermalModel};
use p7_sensors::{calibration, CpmBank, CpmReading};
use p7_types::{
    seed_for_indexed, Amps, CoreId, MegaHertz, Seconds, SocketId, Volts, Watts, CORES_PER_SOCKET,
    CPMS_PER_SOCKET,
};
use p7_workloads::ActivityTrace;

/// Everything observed on one socket during one 32 ms window.
///
/// Entirely stack-allocated: the CPM readouts are fixed arrays, so building
/// a `SocketTick` never touches the heap.
#[derive(Debug, Clone)]
pub struct SocketTick {
    /// Vdd rail power as the server's VRM sensors report it: rail set
    /// point times load current, i.e. silicon consumption plus the
    /// resistive delivery loss across the loadline and grid. This is the
    /// paper's "chip power" observable.
    pub power: Watts,
    /// Power consumed by the silicon alone, at delivered voltages.
    pub consumed_power: Watts,
    /// Voltage each core saw.
    pub core_voltages: [Volts; CORES_PER_SOCKET],
    /// Clock frequency of each core at the end of the window.
    pub core_freqs: [MegaHertz; CORES_PER_SOCKET],
    /// Decomposed voltage drop per core.
    pub breakdown: [DropBreakdown; CORES_PER_SOCKET],
    /// Slowest clock among powered-on cores (the firmware's input).
    pub min_on_freq: Option<MegaHertz>,
    /// Worst instantaneous clock the window could have produced: the
    /// frequency the slowest core would dip to under the deepest droop
    /// plus the firmware's load-transient reserve. The undervolting
    /// firmware servoes this conservative value to the target so the chip
    /// never misses timing mid-window.
    pub sticky_min_freq: Option<MegaHertz>,
    /// Sample-mode CPM readings (40, flat-indexed).
    pub cpm_sample: [CpmReading; CPMS_PER_SOCKET],
    /// Sticky-mode CPM readings (40, flat-indexed).
    pub cpm_sticky: [CpmReading; CPMS_PER_SOCKET],
    /// Total current drawn from the rail.
    pub current: Amps,
    /// The rail set point during this window.
    pub set_point: Volts,
}

/// Converged state of the previous window's fixed-point solve, used to
/// warm-start the next one. Voltages move by at most a few millivolts
/// between 32 ms windows, so the previous solution is an excellent seed.
#[derive(Debug, Clone, Copy)]
struct SolveSeed {
    chip_input: Volts,
    core_voltages: [Volts; CORES_PER_SOCKET],
}

/// One POWER7+ chip in the simulation.
#[derive(Debug, Clone)]
pub struct ChipSim {
    socket: SocketId,
    power_model: ChipPowerModel,
    grid: PdnGrid,
    didt: DidtModel,
    bank: CpmBank,
    dplls: [Dpll; CORES_PER_SOCKET],
    thermal: ThermalModel,
    states: [CorePowerState; CORES_PER_SOCKET],
    traces: [Option<ActivityTrace>; CORES_PER_SOCKET],
    /// Per-core effective switched capacitance (nF), hoisted out of the
    /// tick loop — it depends only on the assignment.
    ceffs: [f64; CORES_PER_SOCKET],
    /// Mean di/dt variability across running threads (1.0 when idle),
    /// hoisted out of the tick loop for the same reason.
    variability_mean: f64,
    curve: VoltFreqCurve,
    residual_guardband: Volts,
    transient_reserve_ohms: f64,
    target: MegaHertz,
    chip_seed: u64,
    solve_seed: Option<SolveSeed>,
    /// Routes this chip's solves through the retained scalar loop instead
    /// of the batched SoA kernel — the differential harness's oracle.
    #[cfg(feature = "scalar-oracle")]
    use_scalar_oracle: bool,
}

/// The window state computed before the electrical solve: this tick's
/// workload activities and the (possibly re-pinned) DPLL frequencies.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TickPrelude {
    activities: [f64; CORES_PER_SOCKET],
    freqs: [MegaHertz; CORES_PER_SOCKET],
}

impl ChipSim {
    /// Builds one socket's chip from the server config and the assignment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when any substrate rejects its configuration.
    pub fn new(
        config: &ServerConfig,
        assignment: &Assignment,
        socket: SocketId,
    ) -> Result<Self, SimError> {
        let power_model = ChipPowerModel::new(config.power.clone())?;
        let grid = PdnGrid::new(&config.pdn);
        let chip_seed = seed_for_indexed(config.seed, "chip", socket.index());
        let didt = DidtModel::new(config.didt.clone(), chip_seed);
        let mut bank = CpmBank::with_seed(chip_seed);
        calibration::calibrate_bank(
            &mut bank,
            config.policy.residual_guardband,
            config.target_frequency,
        )?;

        let mut states = [CorePowerState::Gated; CORES_PER_SOCKET];
        let mut traces: [Option<ActivityTrace>; CORES_PER_SOCKET] = std::array::from_fn(|_| None);
        let mut ceffs = [0.0f64; CORES_PER_SOCKET];
        for core in CoreId::all() {
            states[core.index()] = assignment.core_state(socket, core);
            if let Some(thread) = assignment.thread_at(socket, core) {
                let thread_seed = seed_for_indexed(chip_seed, "trace", core.index());
                traces[core.index()] = Some(ActivityTrace::new(&thread.workload, thread_seed));
                ceffs[core.index()] = thread.workload.ceff_nf();
            }
        }

        let dpll = Dpll::new(config.target_frequency, config.dpll_min, config.dpll_max)?;
        let dplls = std::array::from_fn(|_| dpll.clone());

        Ok(ChipSim {
            socket,
            power_model,
            grid,
            didt,
            bank,
            dplls,
            thermal: ThermalModel::new(config.ambient, 0.115, Seconds(20.0)),
            states,
            traces,
            ceffs,
            variability_mean: Self::assignment_variability(assignment, socket),
            curve: config.curve.clone(),
            residual_guardband: config.policy.residual_guardband,
            transient_reserve_ohms: config.policy.transient_reserve_ohms,
            target: config.target_frequency,
            chip_seed,
            solve_seed: None,
            #[cfg(feature = "scalar-oracle")]
            use_scalar_oracle: false,
        })
    }

    /// Routes this chip through the retained scalar solve loop (the
    /// differential-test oracle) instead of the batched SoA kernel.
    ///
    /// Deliberately untouched by [`ChipSim::reset`], so an oracle chip can
    /// be reused across runs like any other.
    #[cfg(feature = "scalar-oracle")]
    pub fn set_scalar_oracle(&mut self, enabled: bool) {
        self.use_scalar_oracle = enabled;
    }

    /// Rewinds this chip to its exactly-as-constructed state so one
    /// construction can serve many runs.
    ///
    /// `config` and `assignment` must be the ones the chip was built from
    /// (the immutable substrates — power model, PDN grid, V/F curve — are
    /// kept, not rebuilt). Everything mutable is re-derived: the di/dt
    /// noise stream, CPM calibration and injected stuck-at faults, the
    /// activity traces, DPLL clocks, thermal state and the warm-solve seed.
    /// A reset chip produces bitwise-identical results to a fresh one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when recalibration fails (it cannot for a
    /// config that already built this chip).
    pub fn reset(
        &mut self,
        config: &ServerConfig,
        assignment: &Assignment,
    ) -> Result<(), SimError> {
        self.didt.reset(self.chip_seed);
        self.bank.clear_stuck_faults();
        calibration::calibrate_bank(
            &mut self.bank,
            config.policy.residual_guardband,
            config.target_frequency,
        )?;
        for core in CoreId::all() {
            let i = core.index();
            self.states[i] = assignment.core_state(self.socket, core);
            self.traces[i] = None;
            self.ceffs[i] = 0.0;
            if let Some(thread) = assignment.thread_at(self.socket, core) {
                let thread_seed = seed_for_indexed(self.chip_seed, "trace", i);
                self.traces[i] = Some(ActivityTrace::new(&thread.workload, thread_seed));
                self.ceffs[i] = thread.workload.ceff_nf();
            }
        }
        self.variability_mean = Self::assignment_variability(assignment, self.socket);
        for d in &mut self.dplls {
            d.set_frequency(config.target_frequency);
        }
        self.thermal.reset();
        self.solve_seed = None;
        Ok(())
    }

    /// Drops the warm-start seed so the next tick's solve starts cold from
    /// the rail set point, exactly as a freshly built chip would.
    pub fn clear_solve_state(&mut self) {
        self.solve_seed = None;
    }

    /// The socket this chip sits in.
    #[must_use]
    pub fn socket(&self) -> SocketId {
        self.socket
    }

    /// Number of powered-on cores.
    #[must_use]
    pub fn on_core_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_on()).count()
    }

    /// Number of running cores.
    #[must_use]
    pub fn running_core_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_running()).count()
    }

    /// Mutable access to the CPM bank (fault injection, recalibration).
    pub fn bank_mut(&mut self) -> &mut CpmBank {
        &mut self.bank
    }

    /// The CPM bank.
    #[must_use]
    pub fn bank(&self) -> &CpmBank {
        &self.bank
    }

    /// Whether a core is powered on this window.
    #[must_use]
    pub fn core_is_on(&self, core: usize) -> bool {
        self.states[core].is_on()
    }

    /// Advances this chip by one 32 ms window under the given rail and
    /// mode, returning everything observed.
    ///
    /// This is the simulator's hot path: after the first tick it performs
    /// no heap allocation (all working sets are fixed arrays, and the
    /// voltage solve warm-starts from the previous window's solution).
    pub fn tick(&mut self, rail: &Rail, mode: GuardbandMode, window: Seconds) -> SocketTick {
        self.tick_scaled(rail, mode, window, None)
    }

    /// Like [`ChipSim::tick`] but with an injected di/dt droop storm:
    /// `droop_scale` multiplies the window's (typical, worst) droops
    /// after the noise stream is sampled, so the underlying random
    /// sequence — and therefore every fault-free statistic — is
    /// untouched. `None` is bitwise-identical to a plain tick.
    pub fn tick_scaled(
        &mut self,
        rail: &Rail,
        mode: GuardbandMode,
        window: Seconds,
        droop_scale: Option<(f64, f64)>,
    ) -> SocketTick {
        let prelude = self.begin_window(mode);
        #[cfg(feature = "scalar-oracle")]
        if self.use_scalar_oracle {
            let solution = self.solve_scalar(rail, &prelude);
            return self.finish_window(rail, mode, window, droop_scale, &prelude, &solution);
        }
        let mut batch = SolveBatch::<1>::new();
        batch.load(0, &self.lane_spec(rail, &prelude));
        batch.solve();
        let solution = batch.lane(0);
        self.finish_window(rail, mode, window, droop_scale, &prelude, &solution)
    }

    /// Steps 1–2 of a window: draw this window's workload activity from
    /// the traces and settle the DPLL frequencies (pinned to the DVFS
    /// target in static mode).
    pub(crate) fn begin_window(&mut self, mode: GuardbandMode) -> TickPrelude {
        // 1. Workload activity for this window.
        let mut activities = [0.0f64; CORES_PER_SOCKET];
        for (i, trace) in self.traces.iter_mut().enumerate() {
            if let Some(trace) = trace.as_mut() {
                activities[i] = trace.next_window();
            }
        }

        // 2. In static mode the clocks are pinned at the DVFS target.
        if mode == GuardbandMode::StaticGuardband {
            for d in &mut self.dplls {
                d.set_frequency(self.target);
            }
        }
        let freqs: [MegaHertz; CORES_PER_SOCKET] =
            std::array::from_fn(|i| self.dplls[i].frequency());
        TickPrelude { activities, freqs }
    }

    /// Step 3's inputs, packaged for one [`SolveBatch`] lane: the
    /// electrical substrates plus this window's activity and frequencies,
    /// warm-started from the previous window's converged solve.
    pub(crate) fn lane_spec<'a>(
        &'a self,
        rail: &'a Rail,
        prelude: &'a TickPrelude,
    ) -> LaneSpec<'a> {
        LaneSpec {
            rail,
            power: &self.power_model,
            grid: &self.grid,
            temperature: self.thermal.temperature(),
            states: &self.states,
            ceffs: &self.ceffs,
            activities: &prelude.activities,
            freqs: &prelude.freqs,
            warm_start: self
                .solve_seed
                .map(|seed| (seed.chip_input, seed.core_voltages)),
        }
    }

    /// The original array-of-structs fixed-point solve, retained verbatim
    /// as the differential-test oracle. The batched SoA kernel in
    /// [`crate::solve`] must reproduce this loop bit for bit. Crate-visible
    /// so the group ticker can keep oracle simulations on the scalar path
    /// while batching their neighbours.
    #[cfg(feature = "scalar-oracle")]
    pub(crate) fn solve_scalar(&self, rail: &Rail, prelude: &TickPrelude) -> LaneSolution {
        let activities = &prelude.activities;
        let freqs = &prelude.freqs;
        let temp = self.thermal.temperature();
        let (mut chip_input, mut core_voltages) = match self.solve_seed {
            Some(seed) => (seed.chip_input, seed.core_voltages),
            None => (rail.set_point(), [rail.set_point(); CORES_PER_SOCKET]),
        };
        let mut core_currents = [Amps::ZERO; CORES_PER_SOCKET];
        let mut uncore_current = Amps::ZERO;
        let mut total_power = Watts::ZERO;
        let mut solve_span = p7_obs::trace::span("solve", 0);
        let mut solve_iterations = 0u32;
        for _ in 0..MAX_SOLVE_ITERATIONS {
            solve_iterations += 1;
            total_power = Watts::ZERO;
            for i in 0..CORES_PER_SOCKET {
                let p = self.power_model.core_power(
                    self.states[i],
                    self.ceffs[i],
                    activities[i],
                    core_voltages[i],
                    freqs[i],
                    temp,
                );
                core_currents[i] = p.total() / core_voltages[i].max(Volts(0.1));
                total_power += p.total();
            }
            let uncore = self.power_model.uncore_power(chip_input);
            uncore_current = uncore / chip_input.max(Volts(0.1));
            total_power += uncore;
            let total_current = self.grid.total_current(&core_currents, uncore_current);
            let next_input = rail.output(total_current);
            let next_voltages = self
                .grid
                .core_voltages(next_input, &core_currents, uncore_current);
            let mut residual = (next_input - chip_input).0.abs();
            for i in 0..CORES_PER_SOCKET {
                residual = residual.max((next_voltages[i] - core_voltages[i]).0.abs());
            }
            chip_input = next_input;
            core_voltages = next_voltages;
            if residual < SOLVE_TOLERANCE.0 {
                break;
            }
        }
        // The span's logical key is the converged iteration count — a
        // deterministic property of the solve, unlike wall-clock time.
        solve_span.set_key(u64::from(solve_iterations));
        drop(solve_span);
        crate::telemetry::solve_iterations().observe(f64::from(solve_iterations));
        let total_current = self.grid.total_current(&core_currents, uncore_current);
        LaneSolution {
            chip_input,
            core_voltages,
            core_currents,
            uncore_current,
            total_current,
            total_power,
            iterations: solve_iterations,
        }
    }

    /// Steps 4–8 of a window, from a converged electrical solution: di/dt
    /// noise, CPM readings, adaptive control, drop decomposition and
    /// thermal integration. Stores the solution as the next window's
    /// warm-start seed.
    pub(crate) fn finish_window(
        &mut self,
        rail: &Rail,
        mode: GuardbandMode,
        window: Seconds,
        droop_scale: Option<(f64, f64)>,
        prelude: &TickPrelude,
        solution: &LaneSolution,
    ) -> SocketTick {
        let freqs = prelude.freqs;
        let core_voltages = solution.core_voltages;
        let core_currents = solution.core_currents;
        let total_power = solution.total_power;
        let total_current = solution.total_current;
        self.solve_seed = Some(SolveSeed {
            chip_input: solution.chip_input,
            core_voltages,
        });

        // 4. di/dt noise for this window.
        let running = self.running_core_count();
        let mut noise = self
            .didt
            .sample_window(running, self.variability_mean, window);
        if let Some((typical_scale, worst_scale)) = droop_scale {
            noise.typical = Volts(noise.typical.0 * typical_scale);
            noise.worst = Volts((noise.worst.0 * worst_scale).max(noise.typical.0));
        }

        // 5. CPM readings at the pre-control frequencies.
        let sample_margins: [Volts; CORES_PER_SOCKET] = std::array::from_fn(|i| {
            core_voltages[i] - noise.typical - self.curve.v_circuit(freqs[i])
        });
        let sticky_margins: [Volts; CORES_PER_SOCKET] =
            std::array::from_fn(|i| sample_margins[i] - (noise.worst - noise.typical));
        // One fused pass over the bank: sample readings, sticky readings
        // and each core's worst monitor, with every CPM's sensitivity
        // evaluated once (bit-identical to three separate passes).
        let readout = self
            .bank
            .read_window(&sample_margins, &sticky_margins, &freqs);
        let cpm_sample = readout.sample;
        let cpm_sticky = readout.sticky;
        // The per-core control input is the worst CPM of the core. A core
        // whose worst monitor reads zero reports *no measurable margin* —
        // the hardware's fail-safe is to slow that core down and let the
        // firmware raise the rail, whatever the analytic margin says.
        let core_min_cpm = readout.core_min;
        let cpm_fail_safe = |i: usize| core_min_cpm[i] == CpmReading::MIN && self.states[i].is_on();

        // 6. Control: adaptive modes let each DPLL chase its usable margin.
        // In undervolting mode the clock is capped at the DVFS target — the
        // spare margin is for the firmware to convert into voltage, not for
        // overclocking.
        if mode.is_adaptive() {
            #[allow(clippy::needless_range_loop)] // i co-indexes voltages and DPLLs
            for i in 0..CORES_PER_SOCKET {
                if self.states[i].is_on() {
                    let usable = if cpm_fail_safe(i) {
                        // No measurable margin: retreat toward the slowest
                        // safe clock until the firmware restores voltage.
                        self.curve.v_circuit(self.target) - self.residual_guardband
                    } else {
                        core_voltages[i] - noise.typical - self.residual_guardband
                    };
                    let f = self.dplls[i].track(usable, &self.curve);
                    if mode == GuardbandMode::Undervolt && f > self.target {
                        self.dplls[i].set_frequency(self.target);
                    }
                }
            }
        }

        // The worst momentary clock of the window: deepest droop plus the
        // firmware's load-transient allowance for this rail's current.
        let transient_reserve = Volts(self.transient_reserve_ohms * total_current.0.max(0.0));
        let worst_case_reserve = (noise.worst).max(transient_reserve);
        let sticky_min_freq = (0..CORES_PER_SOCKET)
            .filter(|&i| self.states[i].is_on())
            .map(|i| {
                if cpm_fail_safe(i) {
                    return MegaHertz(0.0);
                }
                let usable = core_voltages[i] - worst_case_reserve - self.residual_guardband;
                self.curve.f_max(usable)
            })
            .min_by(|a, b| a.partial_cmp(b).expect("frequencies are finite"));

        // 7. Drop decomposition per core.
        let loadline = rail.loadline_drop(total_current);
        let global = self.grid.global_drop(total_current);
        let breakdown: [DropBreakdown; CORES_PER_SOCKET] = std::array::from_fn(|i| {
            let core = CoreId::new(i as u8).expect("core in range");
            DropBreakdown {
                loadline,
                ir_drop: global + self.grid.local_drop(core, &core_currents),
                typical_didt: noise.typical,
                worst_didt: noise.worst - noise.typical,
            }
        });

        // 8. Thermal integration.
        self.thermal.step(total_power, window);

        let min_on_freq = (0..CORES_PER_SOCKET)
            .filter(|&i| self.states[i].is_on())
            .map(|i| self.dplls[i].frequency())
            .min_by(|a, b| a.partial_cmp(b).expect("frequencies are finite"));

        // What the VRM power sensor reports: set point × load current.
        let rail_power = rail.set_point() * total_current;

        SocketTick {
            power: rail_power,
            consumed_power: total_power,
            core_voltages,
            core_freqs: std::array::from_fn(|i| self.dplls[i].frequency()),
            breakdown,
            min_on_freq,
            sticky_min_freq,
            cpm_sample,
            cpm_sticky,
            current: total_current,
            set_point: rail.set_point(),
        }
    }

    /// Mean di/dt variability across this socket's running threads (1.0
    /// when the socket is idle).
    fn assignment_variability(assignment: &Assignment, socket: SocketId) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for core in CoreId::all() {
            if let Some(thread) = assignment.thread_at(socket, core) {
                sum += thread.workload.variability();
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            sum / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::SOLVE_TOLERANCE;
    use p7_types::Ohms;
    use p7_workloads::Catalog;

    fn setup(k: usize, mode: GuardbandMode) -> (ChipSim, Rail, GuardbandMode) {
        let cfg = ServerConfig::power7plus(7);
        let w = Catalog::power7plus().get("raytrace").unwrap().clone();
        let a = Assignment::single_socket(&w, k).unwrap();
        let chip = ChipSim::new(&cfg, &a, SocketId::new(0).unwrap()).unwrap();
        let rail = Rail::new(cfg.nominal_voltage(), cfg.pdn.vrm_loadline);
        (chip, rail, mode)
    }

    fn window() -> Seconds {
        Seconds::from_millis(32.0)
    }

    #[test]
    fn static_mode_pins_frequency() {
        let (mut chip, rail, mode) = setup(4, GuardbandMode::StaticGuardband);
        for _ in 0..5 {
            let t = chip.tick(&rail, mode, window());
            for f in t.core_freqs {
                assert_eq!(f, MegaHertz(4200.0));
            }
        }
    }

    #[test]
    fn overclock_mode_boosts_above_target() {
        let (mut chip, rail, mode) = setup(1, GuardbandMode::Overclock);
        let mut last = None;
        for _ in 0..10 {
            last = Some(chip.tick(&rail, mode, window()));
        }
        let t = last.unwrap();
        // Fig. 4a: light load boosts ~8–11 % above 4.2 GHz.
        let boost = (t.core_freqs[0].0 - 4200.0) / 4200.0 * 100.0;
        assert!((5.0..13.0).contains(&boost), "boost {boost}%");
    }

    #[test]
    fn more_active_cores_mean_less_boost() {
        let boost_at = |k: usize| {
            let (mut chip, rail, mode) = setup(k, GuardbandMode::Overclock);
            let mut f = 0.0;
            for _ in 0..10 {
                f = chip.tick(&rail, mode, window()).core_freqs[0].0;
            }
            f
        };
        let one = boost_at(1);
        let eight = boost_at(8);
        assert!(one > eight + 50.0, "1-core {one} vs 8-core {eight}");
    }

    #[test]
    fn power_grows_with_active_cores() {
        let power_at = |k: usize| {
            let (mut chip, rail, mode) = setup(k, GuardbandMode::StaticGuardband);
            let mut p = Watts::ZERO;
            for _ in 0..10 {
                p = chip.tick(&rail, mode, window()).power;
            }
            p.0
        };
        let p1 = power_at(1);
        let p8 = power_at(8);
        assert!(p8 > p1 + 30.0, "1-core {p1} W vs 8-core {p8} W");
        assert!((55.0..110.0).contains(&p1), "1-core power {p1} W");
        assert!((100.0..160.0).contains(&p8), "8-core power {p8} W");
    }

    #[test]
    fn active_core_sees_lowest_voltage() {
        let (mut chip, rail, mode) = setup(1, GuardbandMode::StaticGuardband);
        let t = chip.tick(&rail, mode, window());
        for i in 1..8 {
            assert!(t.core_voltages[0] < t.core_voltages[i]);
        }
    }

    #[test]
    fn breakdown_total_matches_voltage_gap() {
        let (mut chip, rail, mode) = setup(4, GuardbandMode::StaticGuardband);
        let t = chip.tick(&rail, mode, window());
        for i in 0..8 {
            let passive_gap = (t.set_point - t.core_voltages[i]).millivolts();
            let passive = t.breakdown[i].passive().millivolts();
            assert!(
                (passive - passive_gap).abs() < 0.5,
                "core {i}: breakdown {passive} vs gap {passive_gap}"
            );
        }
    }

    #[test]
    fn cpm_hovers_near_calibration_in_adaptive_mode() {
        // Sec. 4.1: "CPMs typically hover around an output value of 2 when
        // adaptive guardbanding is active".
        let (mut chip, rail, mode) = setup(4, GuardbandMode::Overclock);
        let mut t = chip.tick(&rail, mode, window());
        for _ in 0..10 {
            t = chip.tick(&rail, mode, window());
        }
        let mean: f64 = t
            .cpm_sample
            .iter()
            .map(|r| f64::from(r.value()))
            .sum::<f64>()
            / 40.0;
        assert!((1.0..4.0).contains(&mean), "mean CPM {mean}");
    }

    #[test]
    fn sticky_readings_never_exceed_sample() {
        let (mut chip, rail, mode) = setup(6, GuardbandMode::StaticGuardband);
        for _ in 0..20 {
            let t = chip.tick(&rail, mode, window());
            for (st, sa) in t.cpm_sticky.iter().zip(&t.cpm_sample) {
                assert!(st <= sa);
            }
        }
    }

    #[test]
    fn gated_socket_draws_little_power() {
        let cfg = ServerConfig::power7plus(7);
        let w = Catalog::power7plus().get("raytrace").unwrap().clone();
        let a = Assignment::consolidated(&w, 4).unwrap();
        let mut chip = ChipSim::new(&cfg, &a, SocketId::new(1).unwrap()).unwrap();
        let rail = Rail::new(cfg.nominal_voltage(), cfg.pdn.vrm_loadline);
        let t = chip.tick(&rail, GuardbandMode::StaticGuardband, window());
        assert_eq!(chip.on_core_count(), 0);
        // Only uncore plus gated leakage.
        assert!(t.power.0 < 30.0, "gated chip drew {} W", t.power.0);
        assert!(t.min_on_freq.is_none());
    }

    #[test]
    fn solve_converges_even_with_huge_loadline() {
        let cfg = ServerConfig::power7plus(7);
        let w = Catalog::power7plus().get("lu_cb").unwrap().clone();
        let a = Assignment::single_socket(&w, 8).unwrap();
        let mut chip = ChipSim::new(&cfg, &a, SocketId::new(0).unwrap()).unwrap();
        let rail = Rail::new(cfg.nominal_voltage(), Ohms(3.0e-3));
        let t = chip.tick(&rail, GuardbandMode::StaticGuardband, window());
        assert!(t.power.is_finite());
        for v in t.core_voltages {
            assert!(v.is_finite() && v > Volts(0.5));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut a, rail, mode) = setup(4, GuardbandMode::Undervolt);
        let (mut b, rail2, _) = setup(4, GuardbandMode::Undervolt);
        for _ in 0..10 {
            let ta = a.tick(&rail, mode, window());
            let tb = b.tick(&rail2, mode, window());
            assert_eq!(ta.power.0, tb.power.0);
            assert_eq!(ta.cpm_sample, tb.cpm_sample);
        }
    }

    #[test]
    fn warm_solve_stays_within_tolerance_of_cold() {
        // Two identical chips diverge only in the solve's starting point:
        // one keeps its warm seed, the other is forced cold every window.
        // Both converge to within SOLVE_TOLERANCE of the same fixed point,
        // so their delivered voltages must agree to a few hundredths of a
        // millivolt.
        let (mut warm, rail, mode) = setup(4, GuardbandMode::Undervolt);
        let (mut cold, rail2, _) = setup(4, GuardbandMode::Undervolt);
        for tick in 0..20 {
            cold.clear_solve_state();
            let tw = warm.tick(&rail, mode, window());
            let tc = cold.tick(&rail2, mode, window());
            for i in 0..CORES_PER_SOCKET {
                let gap = (tw.core_voltages[i] - tc.core_voltages[i]).0.abs();
                assert!(
                    gap < 4.0 * SOLVE_TOLERANCE.0,
                    "tick {tick} core {i}: warm-cold gap {} mV",
                    gap * 1e3
                );
            }
        }
    }

    #[test]
    fn reset_reproduces_fresh_chip_bitwise() {
        let cfg = ServerConfig::power7plus(7);
        let w = Catalog::power7plus().get("raytrace").unwrap().clone();
        let a = Assignment::single_socket(&w, 3).unwrap();
        let rail = Rail::new(cfg.nominal_voltage(), cfg.pdn.vrm_loadline);

        let mut reused = ChipSim::new(&cfg, &a, SocketId::new(0).unwrap()).unwrap();
        // Dirty every piece of mutable state, including a stuck-at fault.
        for _ in 0..7 {
            reused.tick(&rail, GuardbandMode::Overclock, window());
        }
        let cpm = p7_types::CpmId::new(CoreId::new(1).unwrap(), 0).unwrap();
        reused
            .bank_mut()
            .monitor_mut(cpm)
            .set_stuck_at(CpmReading::new(0));
        reused.reset(&cfg, &a).unwrap();

        let mut fresh = ChipSim::new(&cfg, &a, SocketId::new(0).unwrap()).unwrap();
        for tick in 0..10 {
            let tr = reused.tick(&rail, GuardbandMode::Undervolt, window());
            let tf = fresh.tick(&rail, GuardbandMode::Undervolt, window());
            assert_eq!(tr.power.0, tf.power.0, "tick {tick}");
            assert_eq!(tr.core_voltages, tf.core_voltages, "tick {tick}");
            assert_eq!(tr.cpm_sample, tf.cpm_sample, "tick {tick}");
            assert_eq!(tr.cpm_sticky, tf.cpm_sticky, "tick {tick}");
        }
    }

    /// Builds a chip with its own workload/core-count so multi-lane
    /// batches hold genuinely different electrical states per lane.
    fn chip_for(name: &str, k: usize, seed: u64) -> (ChipSim, Rail) {
        let cfg = ServerConfig::power7plus(seed);
        let w = Catalog::power7plus().get(name).unwrap().clone();
        let a = Assignment::single_socket(&w, k).unwrap();
        let chip = ChipSim::new(&cfg, &a, SocketId::new(0).unwrap()).unwrap();
        let rail = Rail::new(cfg.nominal_voltage(), cfg.pdn.vrm_loadline);
        (chip, rail)
    }

    #[test]
    fn partial_batch_matches_individual_lane_solves() {
        // Remainder masking: a LANES=4 batch with only three occupied
        // lanes must produce, lane for lane, the bit-identical solutions
        // of three independent LANES=1 solves. Covers both the cold
        // first window and warm-seeded later windows.
        let mode = GuardbandMode::Undervolt;
        let mut chips = [
            chip_for("raytrace", 4, 7),
            chip_for("lu_cb", 8, 11),
            chip_for("mcf", 2, 13),
        ];
        for w in 0..6 {
            let preludes: Vec<TickPrelude> = chips
                .iter_mut()
                .map(|(chip, _)| chip.begin_window(mode))
                .collect();

            let mut wide = SolveBatch::<4>::new();
            for (lane, ((chip, rail), prelude)) in chips.iter().zip(&preludes).enumerate() {
                wide.load(lane, &chip.lane_spec(rail, prelude));
            }
            assert_eq!(wide.occupancy(), 3, "lane 3 must stay vacant");
            wide.solve();

            let mut solutions = Vec::new();
            for (lane, ((chip, rail), prelude)) in chips.iter().zip(&preludes).enumerate() {
                let mut narrow = SolveBatch::<1>::new();
                narrow.load(0, &chip.lane_spec(rail, prelude));
                narrow.solve();
                assert_eq!(
                    wide.lane(lane),
                    narrow.lane(0),
                    "window {w} lane {lane}: partial batch diverged from scalar-width batch"
                );
                solutions.push(narrow.lane(0));
            }

            // Advance all chips so the next window exercises warm seeds.
            for (((chip, rail), prelude), solution) in
                chips.iter_mut().zip(&preludes).zip(&solutions)
            {
                chip.finish_window(rail, mode, window(), None, prelude, solution);
            }
        }
    }

    #[cfg(feature = "scalar-oracle")]
    #[test]
    fn lanes_one_batch_is_bit_identical_to_scalar_solve() {
        // The degenerate LANES=1 batch is the scalar solver: same seeds,
        // same association order, same iteration count — so the whole
        // LaneSolution must match the retained scalar loop *exactly*,
        // not merely within tolerance.
        for mode in [GuardbandMode::Undervolt, GuardbandMode::Overclock] {
            let (mut chip, rail) = chip_for("raytrace", 6, 7);
            for w in 0..12 {
                let prelude = chip.begin_window(mode);
                let scalar = chip.solve_scalar(&rail, &prelude);
                let mut batch = SolveBatch::<1>::new();
                batch.load(0, &chip.lane_spec(&rail, &prelude));
                batch.solve();
                assert_eq!(
                    batch.lane(0),
                    scalar,
                    "window {w} mode {mode}: batch diverged from scalar oracle"
                );
                chip.finish_window(&rail, mode, window(), None, &prelude, &scalar);
            }
        }
    }

    #[cfg(feature = "scalar-oracle")]
    #[test]
    fn oracle_chip_ticks_bitwise_identical_to_batched() {
        // End-to-end over the full tick (traces, DPLLs, CPMs, droop):
        // flipping a chip onto the scalar-oracle path must not change a
        // single observable bit relative to the batched path.
        let (mut batched, rail) = chip_for("vips", 5, 9);
        let (mut oracle, rail2) = chip_for("vips", 5, 9);
        oracle.set_scalar_oracle(true);
        for tick in 0..15 {
            let tb = batched.tick(&rail, GuardbandMode::Undervolt, window());
            let to = oracle.tick(&rail2, GuardbandMode::Undervolt, window());
            assert_eq!(tb.power.0, to.power.0, "tick {tick}");
            assert_eq!(tb.set_point, to.set_point, "tick {tick}");
            assert_eq!(tb.core_voltages, to.core_voltages, "tick {tick}");
            assert_eq!(tb.core_freqs, to.core_freqs, "tick {tick}");
            assert_eq!(tb.cpm_sample, to.cpm_sample, "tick {tick}");
            assert_eq!(tb.cpm_sticky, to.cpm_sticky, "tick {tick}");
        }
    }
}
