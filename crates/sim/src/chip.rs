//! Per-socket chip model: the electrical solve and the control step.

use crate::assignment::Assignment;
use crate::config::ServerConfig;
use crate::error::SimError;
use p7_control::{Dpll, GuardbandMode, VoltFreqCurve};
use p7_pdn::{DidtModel, DropBreakdown, PdnGrid, Rail};
use p7_power::{ChipPowerModel, CorePowerState, ThermalModel};
use p7_sensors::{calibration, CpmBank, CpmReading};
use p7_types::{
    seed_for, Amps, CoreId, MegaHertz, Seconds, SocketId, Volts, Watts, CORES_PER_SOCKET,
};
use p7_workloads::{ActivityTrace, WorkloadProfile};

/// Everything observed on one socket during one 32 ms window.
#[derive(Debug, Clone)]
pub struct SocketTick {
    /// Vdd rail power as the server's VRM sensors report it: rail set
    /// point times load current, i.e. silicon consumption plus the
    /// resistive delivery loss across the loadline and grid. This is the
    /// paper's "chip power" observable.
    pub power: Watts,
    /// Power consumed by the silicon alone, at delivered voltages.
    pub consumed_power: Watts,
    /// Voltage each core saw.
    pub core_voltages: [Volts; CORES_PER_SOCKET],
    /// Clock frequency of each core at the end of the window.
    pub core_freqs: [MegaHertz; CORES_PER_SOCKET],
    /// Decomposed voltage drop per core.
    pub breakdown: [DropBreakdown; CORES_PER_SOCKET],
    /// Slowest clock among powered-on cores (the firmware's input).
    pub min_on_freq: Option<MegaHertz>,
    /// Worst instantaneous clock the window could have produced: the
    /// frequency the slowest core would dip to under the deepest droop
    /// plus the firmware's load-transient reserve. The undervolting
    /// firmware servoes this conservative value to the target so the chip
    /// never misses timing mid-window.
    pub sticky_min_freq: Option<MegaHertz>,
    /// Sample-mode CPM readings (40, flat-indexed).
    pub cpm_sample: Vec<CpmReading>,
    /// Sticky-mode CPM readings (40, flat-indexed).
    pub cpm_sticky: Vec<CpmReading>,
    /// Total current drawn from the rail.
    pub current: Amps,
    /// The rail set point during this window.
    pub set_point: Volts,
}

/// One POWER7+ chip in the simulation.
#[derive(Debug, Clone)]
pub struct ChipSim {
    socket: SocketId,
    power_model: ChipPowerModel,
    grid: PdnGrid,
    didt: DidtModel,
    bank: CpmBank,
    dplls: Vec<Dpll>,
    thermal: ThermalModel,
    states: [CorePowerState; CORES_PER_SOCKET],
    core_workloads: Vec<Option<WorkloadProfile>>,
    traces: Vec<Option<ActivityTrace>>,
    curve: VoltFreqCurve,
    residual_guardband: Volts,
    transient_reserve_ohms: f64,
    target: MegaHertz,
}

/// Fixed-point iterations of the voltage↔power solve per tick. The loop
/// contracts quickly (the drop is a few percent of Vdd), so four rounds
/// put the residual far below a millivolt.
const SOLVE_ITERATIONS: usize = 4;

impl ChipSim {
    /// Builds one socket's chip from the server config and the assignment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when any substrate rejects its configuration.
    pub fn new(
        config: &ServerConfig,
        assignment: &Assignment,
        socket: SocketId,
    ) -> Result<Self, SimError> {
        let power_model = ChipPowerModel::new(config.power.clone())?;
        let grid = PdnGrid::new(&config.pdn);
        let chip_seed = seed_for(config.seed, &format!("chip{}", socket.index()));
        let didt = DidtModel::new(config.didt.clone(), chip_seed);
        let mut bank = CpmBank::with_seed(chip_seed);
        calibration::calibrate_bank(
            &mut bank,
            config.policy.residual_guardband,
            config.target_frequency,
        )?;

        let mut states = [CorePowerState::Gated; CORES_PER_SOCKET];
        let mut core_workloads: Vec<Option<WorkloadProfile>> = vec![None; CORES_PER_SOCKET];
        let mut traces: Vec<Option<ActivityTrace>> = vec![None; CORES_PER_SOCKET];
        for core in CoreId::all() {
            states[core.index()] = assignment.core_state(socket, core);
            if let Some(thread) = assignment.thread_at(socket, core) {
                let thread_seed = seed_for(chip_seed, &format!("trace{}", core.index()));
                traces[core.index()] = Some(ActivityTrace::new(&thread.workload, thread_seed));
                core_workloads[core.index()] = Some(thread.workload.clone());
            }
        }

        let dplls = (0..CORES_PER_SOCKET)
            .map(|_| Dpll::new(config.target_frequency, config.dpll_min, config.dpll_max))
            .collect::<Result<Vec<_>, _>>()?;

        Ok(ChipSim {
            socket,
            power_model,
            grid,
            didt,
            bank,
            dplls,
            thermal: ThermalModel::new(config.ambient, 0.115, Seconds(20.0)),
            states,
            core_workloads,
            traces,
            curve: config.curve.clone(),
            residual_guardband: config.policy.residual_guardband,
            transient_reserve_ohms: config.policy.transient_reserve_ohms,
            target: config.target_frequency,
        })
    }

    /// The socket this chip sits in.
    #[must_use]
    pub fn socket(&self) -> SocketId {
        self.socket
    }

    /// Number of powered-on cores.
    #[must_use]
    pub fn on_core_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_on()).count()
    }

    /// Number of running cores.
    #[must_use]
    pub fn running_core_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_running()).count()
    }

    /// Mutable access to the CPM bank (fault injection, recalibration).
    pub fn bank_mut(&mut self) -> &mut CpmBank {
        &mut self.bank
    }

    /// The CPM bank.
    #[must_use]
    pub fn bank(&self) -> &CpmBank {
        &self.bank
    }

    /// Advances this chip by one 32 ms window under the given rail and
    /// mode, returning everything observed.
    pub fn tick(&mut self, rail: &Rail, mode: GuardbandMode, window: Seconds) -> SocketTick {
        // 1. Workload activity for this window.
        let mut activities = [0.0f64; CORES_PER_SOCKET];
        let mut ceffs = [0.0f64; CORES_PER_SOCKET];
        for i in 0..CORES_PER_SOCKET {
            if let Some(trace) = self.traces[i].as_mut() {
                activities[i] = trace.next_window();
            }
            if let Some(w) = self.core_workloads[i].as_ref() {
                ceffs[i] = w.ceff_nf();
            }
        }

        // 2. In static mode the clocks are pinned at the DVFS target.
        if mode == GuardbandMode::StaticGuardband {
            for d in &mut self.dplls {
                d.set_frequency(self.target);
            }
        }
        let freqs: Vec<MegaHertz> = self.dplls.iter().map(Dpll::frequency).collect();

        // 3. Fixed-point electrical solve: power ↔ current ↔ voltage.
        let temp = self.thermal.temperature();
        let mut core_voltages = [rail.set_point(); CORES_PER_SOCKET];
        let mut chip_input = rail.set_point();
        let mut core_currents = [Amps::ZERO; CORES_PER_SOCKET];
        let mut uncore_current = Amps::ZERO;
        let mut total_power = Watts::ZERO;
        for _ in 0..SOLVE_ITERATIONS {
            total_power = Watts::ZERO;
            for i in 0..CORES_PER_SOCKET {
                let p = self.power_model.core_power(
                    self.states[i],
                    ceffs[i],
                    activities[i],
                    core_voltages[i],
                    freqs[i],
                    temp,
                );
                core_currents[i] = p.total() / core_voltages[i].max(Volts(0.1));
                total_power += p.total();
            }
            let uncore = self.power_model.uncore_power(chip_input);
            uncore_current = uncore / chip_input.max(Volts(0.1));
            total_power += uncore;
            let total_current = self.grid.total_current(&core_currents, uncore_current);
            chip_input = rail.output(total_current);
            core_voltages = self
                .grid
                .core_voltages(chip_input, &core_currents, uncore_current);
        }
        let total_current = self.grid.total_current(&core_currents, uncore_current);

        // 4. di/dt noise for this window.
        let running = self.running_core_count();
        let variability = self.mean_variability();
        let noise = self.didt.sample_window(running, variability, window);

        // 5. CPM readings at the pre-control frequencies.
        let freq_arr: [MegaHertz; CORES_PER_SOCKET] = std::array::from_fn(|i| freqs[i]);
        let sample_margins: [Volts; CORES_PER_SOCKET] = std::array::from_fn(|i| {
            core_voltages[i] - noise.typical - self.curve.v_circuit(freqs[i])
        });
        let sticky_margins: [Volts; CORES_PER_SOCKET] =
            std::array::from_fn(|i| sample_margins[i] - (noise.worst - noise.typical));
        let cpm_sample = self.bank.read_all(&sample_margins, &freq_arr);
        let cpm_sticky = self.bank.read_all(&sticky_margins, &freq_arr);
        // The per-core control input is the worst CPM of the core. A core
        // whose worst monitor reads zero reports *no measurable margin* —
        // the hardware's fail-safe is to slow that core down and let the
        // firmware raise the rail, whatever the analytic margin says.
        let core_min_cpm = self.bank.core_min_readings(&sample_margins, &freq_arr);
        let cpm_fail_safe = |i: usize| core_min_cpm[i] == CpmReading::MIN && self.states[i].is_on();

        // 6. Control: adaptive modes let each DPLL chase its usable margin.
        // In undervolting mode the clock is capped at the DVFS target — the
        // spare margin is for the firmware to convert into voltage, not for
        // overclocking.
        if mode.is_adaptive() {
            #[allow(clippy::needless_range_loop)] // i co-indexes voltages and DPLLs
            for i in 0..CORES_PER_SOCKET {
                if self.states[i].is_on() {
                    let usable = if cpm_fail_safe(i) {
                        // No measurable margin: retreat toward the slowest
                        // safe clock until the firmware restores voltage.
                        self.curve.v_circuit(self.target) - self.residual_guardband
                    } else {
                        core_voltages[i] - noise.typical - self.residual_guardband
                    };
                    let f = self.dplls[i].track(usable, &self.curve);
                    if mode == GuardbandMode::Undervolt && f > self.target {
                        self.dplls[i].set_frequency(self.target);
                    }
                }
            }
        }

        // The worst momentary clock of the window: deepest droop plus the
        // firmware's load-transient allowance for this rail's current.
        let transient_reserve = Volts(self.transient_reserve_ohms * total_current.0.max(0.0));
        let worst_case_reserve = (noise.worst).max(transient_reserve);
        let sticky_min_freq = (0..CORES_PER_SOCKET)
            .filter(|&i| self.states[i].is_on())
            .map(|i| {
                if cpm_fail_safe(i) {
                    return MegaHertz(0.0);
                }
                let usable = core_voltages[i] - worst_case_reserve - self.residual_guardband;
                self.curve.f_max(usable)
            })
            .min_by(|a, b| a.partial_cmp(b).expect("frequencies are finite"));

        // 7. Drop decomposition per core.
        let loadline = rail.loadline_drop(total_current);
        let global = self.grid.global_drop(total_current);
        let breakdown: [DropBreakdown; CORES_PER_SOCKET] = std::array::from_fn(|i| {
            let core = CoreId::new(i as u8).expect("core in range");
            DropBreakdown {
                loadline,
                ir_drop: global + self.grid.local_drop(core, &core_currents),
                typical_didt: noise.typical,
                worst_didt: noise.worst - noise.typical,
            }
        });

        // 8. Thermal integration.
        self.thermal.step(total_power, window);

        let min_on_freq = (0..CORES_PER_SOCKET)
            .filter(|&i| self.states[i].is_on())
            .map(|i| self.dplls[i].frequency())
            .min_by(|a, b| a.partial_cmp(b).expect("frequencies are finite"));

        // What the VRM power sensor reports: set point × load current.
        let rail_power = rail.set_point() * total_current;

        SocketTick {
            power: rail_power,
            consumed_power: total_power,
            core_voltages,
            core_freqs: std::array::from_fn(|i| self.dplls[i].frequency()),
            breakdown,
            min_on_freq,
            sticky_min_freq,
            cpm_sample,
            cpm_sticky,
            current: total_current,
            set_point: rail.set_point(),
        }
    }

    /// Mean di/dt variability across running threads (1.0 when idle).
    fn mean_variability(&self) -> f64 {
        let vals: Vec<f64> = self
            .core_workloads
            .iter()
            .flatten()
            .map(WorkloadProfile::variability)
            .collect();
        if vals.is_empty() {
            1.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_types::Ohms;
    use p7_workloads::Catalog;

    fn setup(k: usize, mode: GuardbandMode) -> (ChipSim, Rail, GuardbandMode) {
        let cfg = ServerConfig::power7plus(7);
        let w = Catalog::power7plus().get("raytrace").unwrap().clone();
        let a = Assignment::single_socket(&w, k).unwrap();
        let chip = ChipSim::new(&cfg, &a, SocketId::new(0).unwrap()).unwrap();
        let rail = Rail::new(cfg.nominal_voltage(), cfg.pdn.vrm_loadline);
        (chip, rail, mode)
    }

    fn window() -> Seconds {
        Seconds::from_millis(32.0)
    }

    #[test]
    fn static_mode_pins_frequency() {
        let (mut chip, rail, mode) = setup(4, GuardbandMode::StaticGuardband);
        for _ in 0..5 {
            let t = chip.tick(&rail, mode, window());
            for f in t.core_freqs {
                assert_eq!(f, MegaHertz(4200.0));
            }
        }
    }

    #[test]
    fn overclock_mode_boosts_above_target() {
        let (mut chip, rail, mode) = setup(1, GuardbandMode::Overclock);
        let mut last = None;
        for _ in 0..10 {
            last = Some(chip.tick(&rail, mode, window()));
        }
        let t = last.unwrap();
        // Fig. 4a: light load boosts ~8–11 % above 4.2 GHz.
        let boost = (t.core_freqs[0].0 - 4200.0) / 4200.0 * 100.0;
        assert!((5.0..13.0).contains(&boost), "boost {boost}%");
    }

    #[test]
    fn more_active_cores_mean_less_boost() {
        let boost_at = |k: usize| {
            let (mut chip, rail, mode) = setup(k, GuardbandMode::Overclock);
            let mut f = 0.0;
            for _ in 0..10 {
                f = chip.tick(&rail, mode, window()).core_freqs[0].0;
            }
            f
        };
        let one = boost_at(1);
        let eight = boost_at(8);
        assert!(one > eight + 50.0, "1-core {one} vs 8-core {eight}");
    }

    #[test]
    fn power_grows_with_active_cores() {
        let power_at = |k: usize| {
            let (mut chip, rail, mode) = setup(k, GuardbandMode::StaticGuardband);
            let mut p = Watts::ZERO;
            for _ in 0..10 {
                p = chip.tick(&rail, mode, window()).power;
            }
            p.0
        };
        let p1 = power_at(1);
        let p8 = power_at(8);
        assert!(p8 > p1 + 30.0, "1-core {p1} W vs 8-core {p8} W");
        assert!((55.0..110.0).contains(&p1), "1-core power {p1} W");
        assert!((100.0..160.0).contains(&p8), "8-core power {p8} W");
    }

    #[test]
    fn active_core_sees_lowest_voltage() {
        let (mut chip, rail, mode) = setup(1, GuardbandMode::StaticGuardband);
        let t = chip.tick(&rail, mode, window());
        for i in 1..8 {
            assert!(t.core_voltages[0] < t.core_voltages[i]);
        }
    }

    #[test]
    fn breakdown_total_matches_voltage_gap() {
        let (mut chip, rail, mode) = setup(4, GuardbandMode::StaticGuardband);
        let t = chip.tick(&rail, mode, window());
        for i in 0..8 {
            let passive_gap = (t.set_point - t.core_voltages[i]).millivolts();
            let passive = t.breakdown[i].passive().millivolts();
            assert!(
                (passive - passive_gap).abs() < 0.5,
                "core {i}: breakdown {passive} vs gap {passive_gap}"
            );
        }
    }

    #[test]
    fn cpm_hovers_near_calibration_in_adaptive_mode() {
        // Sec. 4.1: "CPMs typically hover around an output value of 2 when
        // adaptive guardbanding is active".
        let (mut chip, rail, mode) = setup(4, GuardbandMode::Overclock);
        let mut t = chip.tick(&rail, mode, window());
        for _ in 0..10 {
            t = chip.tick(&rail, mode, window());
        }
        let mean: f64 = t
            .cpm_sample
            .iter()
            .map(|r| f64::from(r.value()))
            .sum::<f64>()
            / 40.0;
        assert!((1.0..4.0).contains(&mean), "mean CPM {mean}");
    }

    #[test]
    fn sticky_readings_never_exceed_sample() {
        let (mut chip, rail, mode) = setup(6, GuardbandMode::StaticGuardband);
        for _ in 0..20 {
            let t = chip.tick(&rail, mode, window());
            for (st, sa) in t.cpm_sticky.iter().zip(&t.cpm_sample) {
                assert!(st <= sa);
            }
        }
    }

    #[test]
    fn gated_socket_draws_little_power() {
        let cfg = ServerConfig::power7plus(7);
        let w = Catalog::power7plus().get("raytrace").unwrap().clone();
        let a = Assignment::consolidated(&w, 4).unwrap();
        let mut chip = ChipSim::new(&cfg, &a, SocketId::new(1).unwrap()).unwrap();
        let rail = Rail::new(cfg.nominal_voltage(), cfg.pdn.vrm_loadline);
        let t = chip.tick(&rail, GuardbandMode::StaticGuardband, window());
        assert_eq!(chip.on_core_count(), 0);
        // Only uncore plus gated leakage.
        assert!(t.power.0 < 30.0, "gated chip drew {} W", t.power.0);
        assert!(t.min_on_freq.is_none());
    }

    #[test]
    fn solve_converges_even_with_huge_loadline() {
        let cfg = ServerConfig::power7plus(7);
        let w = Catalog::power7plus().get("lu_cb").unwrap().clone();
        let a = Assignment::single_socket(&w, 8).unwrap();
        let mut chip = ChipSim::new(&cfg, &a, SocketId::new(0).unwrap()).unwrap();
        let rail = Rail::new(cfg.nominal_voltage(), Ohms(3.0e-3));
        let t = chip.tick(&rail, GuardbandMode::StaticGuardband, window());
        assert!(t.power.is_finite());
        for v in t.core_voltages {
            assert!(v.is_finite() && v > Volts(0.5));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut a, rail, mode) = setup(4, GuardbandMode::Undervolt);
        let (mut b, rail2, _) = setup(4, GuardbandMode::Undervolt);
        for _ in 0..10 {
            let ta = a.tick(&rail, mode, window());
            let tb = b.tick(&rail2, mode, window());
            assert_eq!(ta.power.0, tb.power.0);
            assert_eq!(ta.cpm_sample, tb.cpm_sample);
        }
    }
}
