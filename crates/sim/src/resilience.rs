//! Fault-injection campaign engine: how much adaptive-guardband benefit
//! survives sensor and telemetry failures when the safety supervisor is
//! watching.
//!
//! The paper's pitch is that CPM feedback lets firmware shave the static
//! guardband; the obvious objection is "and what happens when a CPM
//! lies?". This module answers it quantitatively. A campaign runs every
//! [`FaultPlan`] scenario through four solves per adaptive mode:
//!
//! 1. a fault-free **static** baseline,
//! 2. a fault-free **adaptive** run (the healthy benefit),
//! 3. the faulted adaptive run **with** the [`SafetySupervisor`]
//!    (`p7_control::SafetySupervisor`) degrading to static on implausible
//!    telemetry, and
//! 4. the faulted adaptive run **without** supervision (the exposure).
//!
//! Each scenario cell reports the fraction of the healthy energy saving
//! retained under fault, the margin-violation counts with and without the
//! supervisor, and the supervisor's trip/re-arm bookkeeping. Cells are
//! independent pure functions of the spec, fanned out with
//! [`crate::sweep::run_indexed`], so a campaign is bitwise identical at
//! any `--jobs` count.

use crate::assignment::Assignment;
use crate::error::SimError;
use crate::experiment::Experiment;
use crate::history::SimEvent;
use crate::journal::{run_durable_indexed, CampaignManifest, DurableOptions, FailedPoint};
use p7_control::{FirmwareController, GuardbandMode, SupervisorConfig};
use p7_faults::FaultPlan;
use p7_types::{SocketId, Volts};
use p7_workloads::Catalog;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A serializable description of one fault-injection campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceSpec {
    /// The fault scenarios to evaluate.
    pub scenarios: Vec<FaultPlan>,
    /// Adaptive guardband modes to stress under each scenario.
    pub modes: Vec<GuardbandMode>,
    /// Catalog name of the workload to run.
    pub workload: String,
    /// Active-core (thread) count on socket 0.
    pub cores: usize,
    /// Master seed of the fault-free silicon.
    pub seed: u64,
    /// Measured telemetry windows per run.
    pub measure_ticks: usize,
    /// Warm-up windows discarded before measuring (fault plans still
    /// replay from window 0, warm-up included).
    pub warmup_ticks: usize,
    /// Thresholds of the per-socket safety supervisors.
    pub supervisor: SupervisorConfig,
}

impl ResilienceSpec {
    /// The default campaign: every shipped scenario under undervolting —
    /// the mode where a lying sensor can walk the rail into the margin.
    #[must_use]
    pub fn power7plus() -> Self {
        ResilienceSpec {
            scenarios: FaultPlan::scenarios(),
            modes: vec![GuardbandMode::Undervolt],
            workload: "raytrace".to_owned(),
            cores: 4,
            seed: 42,
            measure_ticks: 50,
            warmup_ticks: 10,
            supervisor: SupervisorConfig::power7plus(),
        }
    }

    /// A fast CI smoke variant: same scenarios, shorter measurement.
    /// The window count still covers every shipped scenario's onset.
    #[must_use]
    pub fn smoke() -> Self {
        let mut spec = ResilienceSpec::power7plus();
        spec.measure_ticks = 45;
        spec.warmup_ticks = 5;
        spec
    }

    /// Number of campaign cells (`scenarios × modes`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.modes.len()
    }

    /// True when any dimension is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks the campaign is well-formed: non-empty dimensions, a known
    /// workload, a legal core count, valid scenarios (distinct names) and
    /// valid supervisor thresholds. Modes must be adaptive — a "static
    /// resilience" cell has no benefit to retain.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] describing the first violation.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), SimError> {
        if self.is_empty() {
            return Err(SimError::Resilience {
                reason: "campaign has an empty dimension".to_owned(),
            });
        }
        catalog.require(&self.workload)?;
        if !(1..=8).contains(&self.cores) {
            return Err(SimError::InvalidAssignment {
                reason: format!("campaign core count {} outside 1..=8", self.cores),
            });
        }
        for mode in &self.modes {
            if !mode.is_adaptive() {
                return Err(SimError::Resilience {
                    reason: "campaign modes must be adaptive (static is the baseline)".to_owned(),
                });
            }
        }
        for (i, scenario) in self.scenarios.iter().enumerate() {
            scenario.validate().map_err(|reason| SimError::Resilience {
                reason: format!("scenario '{}': {reason}", scenario.name),
            })?;
            if self.scenarios[..i].iter().any(|s| s.name == scenario.name) {
                return Err(SimError::Resilience {
                    reason: format!("duplicate scenario name '{}'", scenario.name),
                });
            }
        }
        self.supervisor
            .validate()
            .map_err(|reason| SimError::Resilience { reason })?;
        Ok(())
    }

    /// Runs the campaign across `jobs` workers (0 = available
    /// parallelism). Results are ordered scenario-major regardless of
    /// scheduling, and every cell is a pure function of the spec, so the
    /// report is identical at any worker count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the spec is invalid or a solve fails;
    /// with several failures the lowest-indexed cell's error is reported.
    pub fn run(&self, jobs: usize) -> Result<ResilienceReport, SimError> {
        self.run_durable(jobs, &DurableOptions::default())
    }

    /// The campaign identity a journal of this spec is stamped with.
    #[must_use]
    pub fn manifest(&self) -> CampaignManifest {
        CampaignManifest::new("resilience", self.seed, serde::json::to_string(self))
    }

    /// [`ResilienceSpec::run`] with the durability contract: an optional
    /// crash-consistent journal of completed cells (resumable after a
    /// crash or SIGKILL), per-cell panic isolation with bounded retries
    /// and quarantine into [`ResilienceReport::failed_cells`], and
    /// cooperative cancellation.
    ///
    /// # Errors
    ///
    /// Everything [`ResilienceSpec::run`] reports, plus
    /// [`SimError::Journal`] for journal I/O or manifest mismatch and
    /// [`SimError::Interrupted`] when the cancel token fired (the
    /// journal, if any, is flushed first).
    pub fn run_durable(
        &self,
        jobs: usize,
        durable: &DurableOptions,
    ) -> Result<ResilienceReport, SimError> {
        let catalog = Catalog::shared();
        self.validate(catalog)?;
        let profile = catalog.require(&self.workload)?.clone();
        let assignment = Assignment::single_socket(&profile, self.cores)?;
        let cells: Vec<(usize, usize)> = (0..self.scenarios.len())
            .flat_map(|s| (0..self.modes.len()).map(move |m| (s, m)))
            .collect();

        let manifest = self.manifest();
        let opened = durable
            .journal
            .open_with::<ScenarioResult>(&manifest, durable.fs.clone())?;
        for (idx, cell) in &opened.entries {
            let matches_grid = cells.get(*idx).is_some_and(|&(s, m)| {
                cell.scenario == self.scenarios[s].name && cell.mode == self.modes[m]
            });
            if !matches_grid {
                return Err(SimError::Journal {
                    reason: format!("recovered entry {idx} does not match the campaign's cells"),
                });
            }
        }

        let solved = run_durable_indexed(
            jobs,
            cells.len(),
            1,
            || (),
            |(), idx| {
                let (s, m) = cells[idx];
                // Cells are never memoized, so every one is journal-worthy.
                self.run_cell(&assignment, &self.scenarios[s], self.modes[m])
                    .map(|cell| (cell, true))
            },
            opened,
            durable,
        )?;

        Ok(ResilienceReport {
            spec: self.clone(),
            results: solved.results.into_iter().flatten().collect(),
            failed_cells: solved.failed,
        })
    }

    /// One campaign cell: baseline, healthy, supervised and unsupervised
    /// solves for a (scenario, mode) pair.
    fn run_cell(
        &self,
        assignment: &Assignment,
        scenario: &FaultPlan,
        mode: GuardbandMode,
    ) -> Result<ScenarioResult, SimError> {
        let healthy_exp =
            Experiment::power7plus(self.seed).with_ticks(self.measure_ticks, self.warmup_ticks);
        let baseline = healthy_exp.run(assignment, GuardbandMode::StaticGuardband)?;
        let healthy = healthy_exp.run(assignment, mode)?;
        let faulted_exp = healthy_exp.clone().with_faults(scenario.clone());

        // Supervised faulted run, with the full window trace so the
        // rail-floor check sees every transient, warm-up included.
        let mut sim = faulted_exp.build_simulation(assignment, mode)?;
        sim.enable_supervisor(self.supervisor)?;
        let (supervised, history) = sim.run_with_history(self.measure_ticks, self.warmup_ticks);
        let floor = FirmwareController::new(
            healthy_exp.config().target_frequency,
            healthy_exp.config().policy.clone(),
        )?
        .voltage_floor(&healthy_exp.config().curve);
        let min_set_point = history
            .records()
            .iter()
            .flat_map(|r| r.sockets.iter().map(|s| s.set_point))
            .fold(Volts(f64::MAX), Volts::min);
        let (mut trips, mut rearms, mut degraded_windows) = (0u64, 0u64, 0u64);
        for socket in SocketId::all() {
            let sup = sim.supervisor(socket).expect("supervisor enabled above");
            trips += u64::from(sup.trips());
            rearms += u64::from(sup.rearms());
            degraded_windows += sup.degraded_windows();
        }
        let margin_violations = sim.margin_violations();

        // Unsupervised exposure: same fault plan, nothing watching.
        let mut unsupervised_sim = faulted_exp.build_simulation(assignment, mode)?;
        unsupervised_sim.run(self.measure_ticks, self.warmup_ticks);
        let unsupervised_violations = unsupervised_sim.margin_violations();

        let baseline_power = baseline.chip_power().0;
        let healthy_saving_percent =
            (baseline_power - healthy.chip_power().0) / baseline_power * 100.0;
        let faulted_saving_percent =
            (baseline_power - supervised.socket0().avg_power.0) / baseline_power * 100.0;
        let savings_retained_percent = if healthy_saving_percent.abs() < 1e-6 {
            100.0
        } else {
            faulted_saving_percent / healthy_saving_percent * 100.0
        };
        Ok(ScenarioResult {
            scenario: scenario.name.clone(),
            mode,
            healthy_saving_percent,
            faulted_saving_percent,
            savings_retained_percent,
            margin_violations,
            unsupervised_violations,
            trips,
            rearms,
            degraded_windows,
            min_set_point,
            floor,
            events: history.events().to_vec(),
        })
    }
}

/// One (scenario, mode) cell of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Name of the fault scenario.
    pub scenario: String,
    /// The adaptive mode under test.
    pub mode: GuardbandMode,
    /// Socket-0 power saving of the fault-free adaptive run over the
    /// static baseline, percent.
    pub healthy_saving_percent: f64,
    /// Socket-0 power saving of the supervised faulted run, percent.
    pub faulted_saving_percent: f64,
    /// `faulted / healthy` saving, percent — the headline "how much of
    /// the benefit survives the fault" number.
    pub savings_retained_percent: f64,
    /// Margin violations in the supervised faulted run (see
    /// [`crate::server::Simulation::margin_violations`]).
    pub margin_violations: u64,
    /// Margin violations in the same faulted run with no supervisor.
    pub unsupervised_violations: u64,
    /// Supervisor trips across both sockets.
    pub trips: u64,
    /// Supervisor re-arms across both sockets.
    pub rearms: u64,
    /// Windows spent degraded to static, across both sockets.
    pub degraded_windows: u64,
    /// The lowest rail set point any socket reached in the supervised
    /// run, warm-up included.
    pub min_set_point: Volts,
    /// The firmware's residual-guardband voltage floor.
    pub floor: Volts,
    /// Fault and supervisor events of the supervised run, in order.
    pub events: Vec<SimEvent>,
}

impl ScenarioResult {
    /// True when the rail never went below the firmware floor.
    #[must_use]
    pub fn floor_respected(&self) -> bool {
        self.min_set_point >= self.floor - Volts(1e-9)
    }
}

/// The merged, scenario-ordered output of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// The spec that was run.
    pub spec: ResilienceSpec,
    /// One result per (scenario, mode) cell, scenario-major.
    /// Quarantined cells are absent here and listed in
    /// [`ResilienceReport::failed_cells`] instead.
    pub results: Vec<ScenarioResult>,
    /// Cells quarantined after bounded panic retries, ordered by index.
    /// Empty on a healthy campaign.
    pub failed_cells: Vec<FailedPoint>,
}

impl ResilienceReport {
    /// The result of one cell, if it was part of the campaign.
    #[must_use]
    pub fn get(&self, scenario: &str, mode: GuardbandMode) -> Option<&ScenarioResult> {
        self.results
            .iter()
            .find(|r| r.scenario == scenario && r.mode == mode)
    }

    /// True when every cell actually ran (none quarantined), no
    /// supervised cell violated the margin and every rail stayed at or
    /// above the firmware floor — the campaign's safety acceptance gate.
    #[must_use]
    pub fn all_safe(&self) -> bool {
        self.failed_cells.is_empty()
            && self
                .results
                .iter()
                .all(|r| r.margin_violations == 0 && r.floor_respected())
    }

    /// The deterministic payload: the results serialized as JSON.
    /// Identical at any worker count.
    #[must_use]
    pub fn results_json(&self) -> String {
        serde::json::to_string(&self.results)
    }

    /// The one-line campaign verdict `ags resilience` prints after the
    /// table (and the quarantine section, if any): cell count, safety
    /// verdict, and the supervised/unsupervised violation totals.
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "campaign: {} cells, {} — supervised margin violations: {}, unsupervised: {}\n",
            self.results.len(),
            if self.all_safe() {
                "all safe"
            } else {
                "UNSAFE"
            },
            self.results
                .iter()
                .map(|r| r.margin_violations)
                .sum::<u64>(),
            self.results
                .iter()
                .map(|r| r.unsupervised_violations)
                .sum::<u64>()
        )
    }

    /// A human-readable fixed-width table, one row per cell.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:<10} {:>9} {:>9} {:>9} {:>6} {:>8} {:>6} {:>7} {:>6}",
            "scenario",
            "mode",
            "healthy%",
            "faulted%",
            "retained%",
            "viol",
            "unsup",
            "trips",
            "rearms",
            "floor"
        );
        for r in &self.results {
            let _ = writeln!(
                out,
                "{:<18} {:<10} {:>9.2} {:>9.2} {:>9.1} {:>6} {:>8} {:>6} {:>7} {:>6}",
                r.scenario,
                r.mode.to_string(),
                r.healthy_saving_percent,
                r.faulted_saving_percent,
                r.savings_retained_percent,
                r.margin_violations,
                r.unsupervised_violations,
                r.trips,
                r.rearms,
                if r.floor_respected() { "ok" } else { "BREACH" }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> ResilienceSpec {
        let mut spec = ResilienceSpec::smoke();
        // One benign and one disruptive scenario keep the unit test fast;
        // the full campaign runs in tests/resilience.rs.
        spec.scenarios = vec![
            FaultPlan::named("dead-cpm").unwrap(),
            FaultPlan::named("droop-storm").unwrap(),
        ];
        spec
    }

    #[test]
    fn validate_rejects_malformed_campaigns() {
        let catalog = Catalog::power7plus();
        assert!(quick_spec().validate(&catalog).is_ok());

        let mut unknown = quick_spec();
        unknown.workload = "nope".to_owned();
        assert!(matches!(
            unknown.validate(&catalog),
            Err(SimError::Workload(_))
        ));

        let mut static_mode = quick_spec();
        static_mode.modes = vec![GuardbandMode::StaticGuardband];
        assert!(matches!(
            static_mode.validate(&catalog),
            Err(SimError::Resilience { .. })
        ));

        let mut dup = quick_spec();
        let copy = dup.scenarios[0].clone();
        dup.scenarios.push(copy);
        assert!(matches!(
            dup.validate(&catalog),
            Err(SimError::Resilience { .. })
        ));

        let mut empty = quick_spec();
        empty.scenarios.clear();
        assert!(matches!(
            empty.validate(&catalog),
            Err(SimError::Resilience { .. })
        ));
    }

    #[test]
    fn campaign_is_identical_at_any_worker_count() {
        let spec = quick_spec();
        let serial = spec.run(1).unwrap();
        let wide = spec.run(4).unwrap();
        assert_eq!(serial.results_json(), wide.results_json());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = quick_spec();
        let json = serde::json::to_string(&spec);
        let back: ResilienceSpec = serde::json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn report_lookup_and_table_cover_every_cell() {
        let spec = quick_spec();
        let report = spec.run(0).unwrap();
        assert_eq!(report.results.len(), spec.len());
        assert!(report.get("dead-cpm", GuardbandMode::Undervolt).is_some());
        assert!(report.get("dead-cpm", GuardbandMode::Overclock).is_none());
        let table = report.table();
        assert_eq!(table.lines().count(), 1 + report.results.len());
        assert!(table.contains("droop-storm"));
    }
}
