//! One-call experiment wrapper: run, settle, and report power,
//! performance, energy and EDP like the paper's measurement scripts.

use crate::assignment::Assignment;
use crate::config::ServerConfig;
use crate::error::SimError;
use crate::measure::RunSummary;
use crate::server::Simulation;
use p7_control::GuardbandMode;
use p7_faults::FaultPlan;
use p7_types::{Joules, Seconds, Watts};
use p7_workloads::ExecutionModel;
use serde::{Deserialize, Serialize};

/// Default number of measured windows (~2 s of telemetry).
pub const DEFAULT_MEASURE_TICKS: usize = 60;
/// Default warm-up windows discarded before measuring (~1 s).
pub const DEFAULT_WARMUP_TICKS: usize = 30;

/// The complete result of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Electrical and frequency averages from the settled run.
    pub summary: RunSummary,
    /// Execution time of the workload at the settled frequency.
    pub exec_time: Seconds,
    /// Total server Vdd energy over the execution (`power · time`).
    pub energy: Joules,
    /// Energy-delay product in joule-seconds (Fig. 3b's metric).
    pub edp: f64,
}

impl Outcome {
    /// Socket 0's mean chip power — the Sec. 3 measurement scope.
    #[must_use]
    pub fn chip_power(&self) -> Watts {
        self.summary.socket0().avg_power
    }

    /// Total server power (both chips) — the Sec. 5.1 measurement scope.
    #[must_use]
    pub fn total_power(&self) -> Watts {
        self.summary.total_power
    }
}

/// Experiment runner: a server configuration plus an execution model.
///
/// # Examples
///
/// ```
/// use p7_control::GuardbandMode;
/// use p7_sim::{Assignment, Experiment};
/// use p7_workloads::Catalog;
///
/// let exp = Experiment::power7plus(42);
/// let w = Catalog::power7plus().get("raytrace").unwrap().clone();
/// let st = exp.run(
///     &Assignment::single_socket(&w, 1)?,
///     GuardbandMode::StaticGuardband,
/// )?;
/// let uv = exp.run(
///     &Assignment::single_socket(&w, 1)?,
///     GuardbandMode::Undervolt,
/// )?;
/// assert!(uv.chip_power() < st.chip_power());
/// # Ok::<(), p7_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    config: ServerConfig,
    exec_model: ExecutionModel,
    measure_ticks: usize,
    warmup_ticks: usize,
    faults: Option<FaultPlan>,
}

impl Experiment {
    /// The calibrated POWER7+ experiment runner.
    #[must_use]
    pub fn power7plus(seed: u64) -> Self {
        Experiment {
            config: ServerConfig::power7plus(seed),
            exec_model: ExecutionModel::power7plus(),
            measure_ticks: DEFAULT_MEASURE_TICKS,
            warmup_ticks: DEFAULT_WARMUP_TICKS,
            faults: None,
        }
    }

    /// Builds a runner from explicit configuration.
    #[must_use]
    pub fn with_config(config: ServerConfig, exec_model: ExecutionModel) -> Self {
        Experiment {
            config,
            exec_model,
            measure_ticks: DEFAULT_MEASURE_TICKS,
            warmup_ticks: DEFAULT_WARMUP_TICKS,
            faults: None,
        }
    }

    /// Overrides how many windows are measured and discarded.
    #[must_use]
    pub fn with_ticks(mut self, measure: usize, warmup: usize) -> Self {
        self.measure_ticks = measure.max(1);
        self.warmup_ticks = warmup;
        self
    }

    /// Injects a fault plan into every simulation this runner builds.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The fault plan runs are subjected to, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Fingerprint of the installed fault plan (0 when fault-free), the
    /// component that keeps faulted and healthy solves apart in caches.
    #[must_use]
    pub fn fault_fingerprint(&self) -> u64 {
        self.faults.as_ref().map_or(0, FaultPlan::fingerprint)
    }

    /// The server configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The execution model.
    #[must_use]
    pub fn exec_model(&self) -> &ExecutionModel {
        &self.exec_model
    }

    /// How many telemetry windows are measured per run.
    #[must_use]
    pub fn measure_ticks(&self) -> usize {
        self.measure_ticks
    }

    /// How many warm-up windows are discarded before measuring.
    #[must_use]
    pub fn warmup_ticks(&self) -> usize {
        self.warmup_ticks
    }

    /// Runs one experiment to steady state and derives time/energy/EDP.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the configuration or assignment is
    /// invalid.
    pub fn run(&self, assignment: &Assignment, mode: GuardbandMode) -> Result<Outcome, SimError> {
        let mut sim = self.build_simulation(assignment, mode)?;
        self.run_with(&mut sim, mode)
    }

    /// Builds a reusable [`Simulation`] for `assignment`; pair with
    /// [`Experiment::run_with`] to amortize construction across modes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the configuration or assignment is
    /// invalid.
    pub fn build_simulation(
        &self,
        assignment: &Assignment,
        mode: GuardbandMode,
    ) -> Result<Simulation, SimError> {
        let mut sim = Simulation::new(self.config.clone(), assignment.clone(), mode)?;
        if let Some(plan) = &self.faults {
            sim.set_fault_plan(plan.clone())?;
        }
        Ok(sim)
    }

    /// Runs one experiment on an already-built simulation, resetting it to
    /// its initial state under `mode` first. Because [`Simulation::reset`]
    /// reproduces fresh construction bitwise, this returns exactly what
    /// [`Experiment::run`] would for the simulation's assignment — without
    /// re-deriving the chips. This is how sweep workers run the three
    /// guardband modes of one assignment on a single construction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the simulation cannot be reset.
    pub fn run_with(&self, sim: &mut Simulation, mode: GuardbandMode) -> Result<Outcome, SimError> {
        sim.reset(mode)?;
        let summary = sim.run(self.measure_ticks, self.warmup_ticks);
        Ok(self.outcome_from_summary(sim.assignment(), summary))
    }

    /// Derives the full [`Outcome`] (execution time, energy, EDP) from an
    /// already-measured [`RunSummary`] of `assignment` under this runner's
    /// configuration. This is [`Experiment::run_with`]'s tail, split out
    /// for callers that produce summaries some other way — the group
    /// ticker ([`crate::group::run_group`]) measures many servers per
    /// solve pass and finishes each one here.
    #[must_use]
    pub fn outcome_from_summary(&self, assignment: &Assignment, summary: RunSummary) -> Outcome {
        let freq_ratio = if assignment.total_threads() > 0 {
            summary.freq_ratio(self.config.target_frequency)
        } else {
            1.0
        };
        let exec_time = match assignment.primary_workload() {
            Some(w) => self
                .exec_model
                .execution_time(w, &assignment.placement_shape(), freq_ratio),
            None => Seconds(0.0),
        };
        let energy = summary.total_power * exec_time;
        Outcome {
            edp: energy.0 * exec_time.0,
            summary,
            exec_time,
            energy,
        }
    }

    /// Convenience: the paper's headline comparison — relative improvement
    /// of `mode` over the static baseline for the same assignment.
    /// Returns `(power_saving_percent, speedup_percent)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when either run fails.
    pub fn improvement_vs_static(
        &self,
        assignment: &Assignment,
        mode: GuardbandMode,
    ) -> Result<(f64, f64), SimError> {
        let baseline = self.run(assignment, GuardbandMode::StaticGuardband)?;
        let adaptive = self.run(assignment, mode)?;
        let power_saving =
            (baseline.chip_power().0 - adaptive.chip_power().0) / baseline.chip_power().0 * 100.0;
        let speedup = (baseline.exec_time.0 - adaptive.exec_time.0) / baseline.exec_time.0 * 100.0;
        Ok((power_saving, speedup))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_workloads::Catalog;

    fn workload(name: &str) -> p7_workloads::WorkloadProfile {
        Catalog::power7plus().get(name).unwrap().clone()
    }

    #[test]
    fn edp_improves_under_undervolting_at_one_core() {
        // Fig. 3b: clear EDP gain at one active core.
        let exp = Experiment::power7plus(42);
        let a = Assignment::single_socket(&workload("raytrace"), 1).unwrap();
        let st = exp.run(&a, GuardbandMode::StaticGuardband).unwrap();
        let uv = exp.run(&a, GuardbandMode::Undervolt).unwrap();
        let gain = (st.edp - uv.edp) / st.edp * 100.0;
        assert!(gain > 5.0, "EDP gain {gain}%");
    }

    #[test]
    fn overclocking_speeds_up_compute_bound_work() {
        let exp = Experiment::power7plus(42);
        let a = Assignment::single_socket(&workload("lu_cb"), 1).unwrap();
        let (_, speedup) = exp
            .improvement_vs_static(&a, GuardbandMode::Overclock)
            .unwrap();
        // Fig. 4b: ~8 % at one core.
        assert!((4.0..12.0).contains(&speedup), "speedup {speedup}%");
    }

    #[test]
    fn energy_is_power_times_time() {
        let exp = Experiment::power7plus(42);
        let a = Assignment::single_socket(&workload("vips"), 4).unwrap();
        let o = exp.run(&a, GuardbandMode::Undervolt).unwrap();
        assert!((o.energy.0 - o.total_power().0 * o.exec_time.0).abs() < 1e-9);
        assert!((o.edp - o.energy.0 * o.exec_time.0).abs() < 1e-9);
    }

    #[test]
    fn workload_heterogeneity_shows_in_eight_core_savings() {
        // Fig. 5a at eight cores: power-hungry swaptions keeps much less
        // of its benefit than memory-bound radix.
        let exp = Experiment::power7plus(42);
        let saving = |name: &str| {
            let a = Assignment::single_socket(&workload(name), 8).unwrap();
            exp.improvement_vs_static(&a, GuardbandMode::Undervolt)
                .unwrap()
                .0
        };
        let radix = saving("radix");
        let swaptions = saving("swaptions");
        assert!(
            radix > swaptions + 2.0,
            "radix {radix}% vs swaptions {swaptions}%"
        );
    }

    #[test]
    fn run_with_reuses_one_simulation_across_modes() {
        let exp = Experiment::power7plus(9).with_ticks(10, 5);
        let a = Assignment::single_socket(&workload("vips"), 3).unwrap();
        let mut sim = exp
            .build_simulation(&a, GuardbandMode::StaticGuardband)
            .unwrap();
        for mode in [
            GuardbandMode::StaticGuardband,
            GuardbandMode::Undervolt,
            GuardbandMode::Overclock,
        ] {
            let reused = exp.run_with(&mut sim, mode).unwrap();
            let fresh = exp.run(&a, mode).unwrap();
            assert_eq!(reused, fresh, "mode {mode:?}");
        }
    }

    #[test]
    fn ticks_override_is_respected() {
        let exp = Experiment::power7plus(1).with_ticks(5, 2);
        let a = Assignment::single_socket(&workload("radix"), 2).unwrap();
        let o = exp.run(&a, GuardbandMode::StaticGuardband).unwrap();
        assert_eq!(o.summary.ticks_measured, 5);
    }
}
