//! Per-window time series of a simulation run.
//!
//! The figure harnesses mostly need settled averages, but transient
//! questions — how fast the firmware walks the rail down, what a droop
//! storm does to the clock — need the window-by-window trace. [`History`]
//! records one [`TickRecord`] per 32 ms window and serializes to CSV.

use crate::chip::SocketTick;
use p7_types::{Amps, MegaHertz, Seconds, Volts, Watts, CORES_PER_SOCKET, NUM_SOCKETS};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One socket's observables in one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocketSample {
    /// Rail power (set point × current).
    pub power: Watts,
    /// Rail set point.
    pub set_point: Volts,
    /// The lowest delivered core voltage.
    pub min_core_voltage: Volts,
    /// Mean clock across all eight cores.
    pub avg_frequency: MegaHertz,
    /// Rail current.
    pub current: Amps,
}

impl From<&SocketTick> for SocketSample {
    fn from(t: &SocketTick) -> Self {
        let min_v = t
            .core_voltages
            .iter()
            .copied()
            .fold(Volts(f64::MAX), Volts::min);
        let avg_f = t.core_freqs.iter().map(|f| f.0).sum::<f64>() / CORES_PER_SOCKET as f64;
        SocketSample {
            power: t.power,
            set_point: t.set_point,
            min_core_voltage: min_v,
            avg_frequency: MegaHertz(avg_f),
            current: t.current,
        }
    }
}

/// A discrete occurrence worth explaining a run with: a planned fault
/// starting or clearing, or the safety supervisor degrading/re-arming
/// a socket's guardband mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimEvent {
    /// Window index the event occurred in.
    pub tick: usize,
    /// Affected socket.
    pub socket: usize,
    /// What happened.
    pub kind: SimEventKind,
}

/// The kinds of [`SimEvent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimEventKind {
    /// A planned fault became active (payload: fault label).
    FaultStarted(String),
    /// A planned fault cleared (payload: fault label).
    FaultEnded(String),
    /// The supervisor degraded the socket to the static guardband
    /// (payload: the health issue that tripped).
    Degraded(String),
    /// The supervisor re-armed adaptive operation.
    Rearmed,
}

/// One simulation window across the whole server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TickRecord {
    /// Window index since the simulation started.
    pub tick: usize,
    /// Window start time.
    pub time: Seconds,
    /// Per-socket samples.
    pub sockets: [SocketSample; NUM_SOCKETS],
}

/// The recorded time series.
///
/// # Examples
///
/// ```
/// use p7_control::GuardbandMode;
/// use p7_sim::{Assignment, ServerConfig, Simulation};
/// use p7_workloads::Catalog;
///
/// let w = Catalog::power7plus().get("radix").unwrap().clone();
/// let mut sim = Simulation::new(
///     ServerConfig::power7plus(1),
///     Assignment::single_socket(&w, 2)?,
///     GuardbandMode::Undervolt,
/// )?;
/// let (_, history) = sim.run_with_history(10, 5);
/// assert_eq!(history.len(), 15); // warm-up windows are recorded too
/// assert!(history.to_csv().starts_with("tick,time_s"));
/// # Ok::<(), p7_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct History {
    records: Vec<TickRecord>,
    events: Vec<SimEvent>,
}

impl History {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> Self {
        History::default()
    }

    /// Creates an empty history with room for `windows` windows, so the
    /// per-tick [`History::push`] path never reallocates.
    #[must_use]
    pub fn with_capacity(windows: usize) -> Self {
        History {
            records: Vec::with_capacity(windows),
            events: Vec::new(),
        }
    }

    /// Ensures room for `additional` more windows without reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.records.reserve(additional);
    }

    /// Appends one window.
    pub fn push(&mut self, tick: usize, time: Seconds, sockets: &[SocketTick; NUM_SOCKETS]) {
        self.records.push(TickRecord {
            tick,
            time,
            sockets: std::array::from_fn(|i| SocketSample::from(&sockets[i])),
        });
    }

    /// Number of recorded windows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The recorded windows in time order.
    #[must_use]
    pub fn records(&self) -> &[TickRecord] {
        &self.records
    }

    /// Appends a fault/supervisor event to the run's explanation log.
    pub fn push_event(&mut self, event: SimEvent) {
        self.events.push(event);
    }

    /// Fault and supervisor events, in occurrence order.
    #[must_use]
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// The window in which the rail set point of `socket` first settled
    /// within `tolerance` of its final value — how long the firmware's
    /// undervolt walk takes.
    #[must_use]
    pub fn settling_window(&self, socket: usize, tolerance: Volts) -> Option<usize> {
        let last = self.records.last()?.sockets.get(socket)?.set_point;
        self.records
            .iter()
            .position(|r| (r.sockets[socket].set_point - last).abs() <= tolerance)
    }

    /// Serializes to CSV, one row per (window, socket).
    #[must_use]
    pub fn to_csv(&self) -> String {
        const HEADER: &str =
            "tick,time_s,socket,power_w,set_point_mv,min_core_mv,avg_freq_mhz,current_a\n";
        // A row is ~50 bytes; 72 leaves slack so the buffer never regrows.
        let mut out = String::with_capacity(HEADER.len() + self.records.len() * NUM_SOCKETS * 72);
        out.push_str(HEADER);
        for r in &self.records {
            for (s, sample) in r.sockets.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{},{:.3},{},{:.2},{:.1},{:.1},{:.0},{:.2}",
                    r.tick,
                    r.time.0,
                    s,
                    sample.power.0,
                    sample.set_point.millivolts(),
                    sample.min_core_voltage.millivolts(),
                    sample.avg_frequency.0,
                    sample.current.0
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use crate::config::ServerConfig;
    use crate::server::Simulation;
    use p7_control::GuardbandMode;
    use p7_workloads::Catalog;

    fn run_history(mode: GuardbandMode) -> History {
        let w = Catalog::power7plus().get("raytrace").unwrap().clone();
        let mut sim = Simulation::new(
            ServerConfig::power7plus(3),
            Assignment::single_socket(&w, 4).unwrap(),
            mode,
        )
        .unwrap();
        sim.run_with_history(20, 10).1
    }

    #[test]
    fn records_every_window_including_warmup() {
        let h = run_history(GuardbandMode::Undervolt);
        assert_eq!(h.len(), 30);
        assert!(!h.is_empty());
        assert_eq!(h.records()[0].tick, 0);
        assert_eq!(h.records()[29].tick, 29);
        // Time advances by 32 ms per window.
        let dt = h.records()[1].time - h.records()[0].time;
        assert!((dt.millis() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn undervolt_walks_the_rail_down_over_warmup() {
        let h = run_history(GuardbandMode::Undervolt);
        let first = h.records()[0].sockets[0].set_point;
        let last = h.records()[29].sockets[0].set_point;
        assert!(last < first, "rail should descend: {first} → {last}");
        // Settling happens within the warm-up (the firmware slews ≤25 mV
        // per window).
        let settled = h.settling_window(0, Volts::from_millivolts(2.0)).unwrap();
        assert!(settled <= 10, "settled at window {settled}");
    }

    #[test]
    fn static_mode_rail_never_moves() {
        let h = run_history(GuardbandMode::StaticGuardband);
        let first = h.records()[0].sockets[0].set_point;
        for r in h.records() {
            assert_eq!(r.sockets[0].set_point, first);
        }
    }

    #[test]
    fn csv_has_one_row_per_window_socket() {
        let h = run_history(GuardbandMode::Overclock);
        let csv = h.to_csv();
        // Header plus 30 windows × 2 sockets.
        assert_eq!(csv.lines().count(), 1 + 30 * 2);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,0.000,0,"));
    }

    #[test]
    fn csv_row_count_tracks_history_len() {
        let empty = History::new();
        assert_eq!(empty.to_csv().lines().count(), 1, "header only");

        let h = run_history(GuardbandMode::Undervolt);
        let csv = h.to_csv();
        assert_eq!(csv.lines().count(), 1 + h.len() * NUM_SOCKETS);
        assert!(csv.starts_with("tick,time_s,socket,"));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a = History::with_capacity(64);
        let b = History::new();
        assert_eq!(a, b);
        a.reserve(128);
        assert!(a.is_empty());
    }
}
