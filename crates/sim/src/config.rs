//! Server-level configuration.

use crate::error::SimError;
use p7_control::{GuardbandPolicy, VoltFreqCurve};
use p7_pdn::{DidtConfig, PdnConfig};
use p7_power::PowerConfig;
use p7_types::{Celsius, MegaHertz};
use serde::{Deserialize, Serialize};

/// Complete configuration of the simulated Power 720 server.
///
/// # Examples
///
/// ```
/// use p7_sim::ServerConfig;
///
/// let cfg = ServerConfig::power7plus(42);
/// cfg.validate().unwrap();
/// assert_eq!(cfg.target_frequency.0, 4200.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Power-delivery parameters (loadline, IR grid).
    pub pdn: PdnConfig,
    /// di/dt noise parameters.
    pub didt: DidtConfig,
    /// Chip power-model parameters.
    pub power: PowerConfig,
    /// Frequency–voltage curve of the core logic.
    pub curve: VoltFreqCurve,
    /// Guardband sizing (static vs. residual).
    pub policy: GuardbandPolicy,
    /// The DVFS target frequency (static mode runs here; undervolt mode
    /// servoes the DPLLs to it).
    pub target_frequency: MegaHertz,
    /// Lower DPLL clamp.
    pub dpll_min: MegaHertz,
    /// Upper DPLL clamp (overclock ceiling).
    pub dpll_max: MegaHertz,
    /// Ambient (inlet) temperature the thermal model relaxes toward.
    pub ambient: Celsius,
    /// Master seed for every stochastic component.
    pub seed: u64,
}

impl ServerConfig {
    /// The calibrated POWER7+ configuration with the given master seed.
    #[must_use]
    pub fn power7plus(seed: u64) -> Self {
        ServerConfig {
            pdn: PdnConfig::power7plus(),
            didt: DidtConfig::power7plus(),
            power: PowerConfig::power7plus(),
            curve: VoltFreqCurve::power7plus(),
            policy: GuardbandPolicy::power7plus(),
            target_frequency: MegaHertz(4200.0),
            dpll_min: MegaHertz(2800.0),
            dpll_max: MegaHertz(4700.0),
            ambient: Celsius(22.0),
            seed,
        }
    }

    /// Validates every sub-configuration and the frequency ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] wrapping the first failing substrate, or
    /// [`SimError::InvalidConfig`] for inconsistent frequency clamps.
    pub fn validate(&self) -> Result<(), SimError> {
        self.pdn.validate()?;
        self.didt.validate()?;
        self.power.validate()?;
        self.policy.validate()?;
        if !(self.ambient.0.is_finite() && (-20.0..=60.0).contains(&self.ambient.0)) {
            return Err(SimError::InvalidConfig {
                reason: "ambient temperature must be finite and within -20..=60 °C",
            });
        }
        if !(self.dpll_min.0 > 0.0
            && self.dpll_min <= self.target_frequency
            && self.target_frequency <= self.dpll_max)
        {
            return Err(SimError::InvalidConfig {
                reason: "frequency clamps must satisfy min <= target <= max",
            });
        }
        Ok(())
    }

    /// The static-guardband nominal voltage at the target frequency.
    #[must_use]
    pub fn nominal_voltage(&self) -> p7_types::Volts {
        self.policy
            .nominal_voltage(&self.curve, self.target_frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        ServerConfig::power7plus(1).validate().unwrap();
    }

    #[test]
    fn nominal_voltage_near_1200mv() {
        let v = ServerConfig::power7plus(1).nominal_voltage();
        assert!((v.millivolts() - 1200.0).abs() < 3.0, "nominal {v}");
    }

    #[test]
    fn low_dvfs_point_runs_too() {
        // The 2.8 GHz DVFS operating point of Fig. 6a is a valid target.
        let mut cfg = ServerConfig::power7plus(1);
        cfg.target_frequency = MegaHertz(2800.0);
        cfg.validate().unwrap();
        assert!((cfg.nominal_voltage().millivolts() - 958.6).abs() < 5.0);
    }

    #[test]
    fn rejects_inverted_clamps() {
        let mut cfg = ServerConfig::power7plus(1);
        cfg.dpll_max = MegaHertz(4000.0);
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn rejects_bad_substrate() {
        let mut cfg = ServerConfig::power7plus(1);
        cfg.pdn.ir_local = p7_types::Ohms(-1.0);
        assert!(matches!(cfg.validate(), Err(SimError::Pdn(_))));
    }
}
