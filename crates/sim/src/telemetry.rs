//! The simulator's metric families, as cached handles into the global
//! [`p7_obs`] registry.
//!
//! Every accessor resolves its handle once through a `OnceLock` and then
//! costs a single atomic load, so instrumented hot paths (the warm tick,
//! the memoized solve) stay allocation- and lock-free. The registry itself
//! starts disabled; until `ags … --metrics/--trace` (or a test) enables
//! it, every update is a single predicted branch.
//!
//! Naming follows Prometheus conventions: `ags_` prefix, `_total` for
//! counters, `_seconds` for wall-clock histograms. Wall-clock families are
//! the one deliberate exception to the repo's determinism contract — their
//! bucket counts depend on machine speed — which is why the
//! jobs-invariance tests compare every family *except* `*_seconds`.

use p7_obs::metrics::{global, Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

/// Bucket bounds for the fixed-point solve iteration histogram. The loop
/// is capped at 16 iterations ([`crate::solve::MAX_SOLVE_ITERATIONS`]);
/// warm-started solves normally converge in 1–3.
pub const SOLVE_ITERATION_BOUNDS: &[f64] = &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0];

/// Bucket bounds for durable-journal segment writes (seconds). Covers
/// tmpfs (~tens of µs) through contended spinning disks (~hundreds of ms);
/// the write includes the fsync of both the segment and its directory.
pub const SEGMENT_WRITE_BOUNDS: &[f64] = &[
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,
];

/// Bucket bounds for sweep chunk-claim wait (seconds): the gap between a
/// worker finishing one chunk and holding the next. The claim is a single
/// `fetch_add`, so anything above a few µs means allocator or scheduler
/// interference.
pub const CHUNK_WAIT_BOUNDS: &[f64] = &[1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1];

/// Bucket bounds for solve-batch occupancy (lanes loaded per batched
/// solve). A server tick batches its two sockets; sweep-scale batching can
/// fill wider batches.
pub const BATCH_OCCUPANCY_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Bucket bounds for lanes converging per batch iteration. Zero is a real
/// observation (an iteration where every active lane kept moving).
pub const LANES_CONVERGED_BOUNDS: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

macro_rules! counter_accessor {
    ($(#[$doc:meta])* $fn_name:ident, $name:literal, $help:literal) => {
        $(#[$doc])*
        pub fn $fn_name() -> &'static Arc<Counter> {
            static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
            HANDLE.get_or_init(|| global().counter($name, $help))
        }
    };
}

macro_rules! gauge_accessor {
    ($(#[$doc:meta])* $fn_name:ident, $name:literal, $help:literal) => {
        $(#[$doc])*
        pub fn $fn_name() -> &'static Arc<Gauge> {
            static HANDLE: OnceLock<Arc<Gauge>> = OnceLock::new();
            HANDLE.get_or_init(|| global().gauge($name, $help))
        }
    };
}

macro_rules! histogram_accessor {
    ($(#[$doc:meta])* $fn_name:ident, $name:literal, $help:literal, $bounds:expr) => {
        $(#[$doc])*
        pub fn $fn_name() -> &'static Arc<Histogram> {
            static HANDLE: OnceLock<Arc<Histogram>> = OnceLock::new();
            HANDLE.get_or_init(|| global().histogram($name, $help, $bounds))
        }
    };
}

counter_accessor!(
    /// Telemetry windows simulated (one per [`crate::server::Simulation::tick`]).
    sim_ticks,
    "ags_sim_ticks_total",
    "Telemetry windows simulated across all Simulation instances"
);

counter_accessor!(
    /// CPM margin-floor violations observed by monitored windows.
    margin_violations,
    "ags_sim_margin_violations_total",
    "Windows in which a socket's CPM margin fell below the safety floor"
);

histogram_accessor!(
    /// Iterations the per-window fixed-point voltage/power solve needed.
    solve_iterations,
    "ags_solve_iterations",
    "Fixed-point solve iterations per socket window (warm starts converge in 1-3)",
    SOLVE_ITERATION_BOUNDS
);

histogram_accessor!(
    /// Lanes loaded into each batched solve ([`crate::solve::SolveBatch`]).
    solve_batch_occupancy,
    "ags_solve_batch_occupancy",
    "Occupied lanes per batched steady-state solve",
    BATCH_OCCUPANCY_BOUNDS
);

histogram_accessor!(
    /// Lanes whose residual dropped below tolerance in one batch iteration.
    solve_lanes_converged,
    "ags_solve_lanes_converged",
    "Lanes converging per batched solve iteration",
    LANES_CONVERGED_BOUNDS
);

counter_accessor!(
    /// Memoized solves answered from the [`crate::sweep::SolveCache`].
    solve_cache_hits,
    "ags_solve_cache_hits_total",
    "Steady-state solves answered from the memoization cache"
);

counter_accessor!(
    /// Memoized solves that had to run the simulator.
    solve_cache_misses,
    "ags_solve_cache_misses_total",
    "Steady-state solves that ran the simulator (cache misses)"
);

counter_accessor!(
    /// Entries dropped by the cache's coarse capacity eviction.
    solve_cache_evictions,
    "ags_solve_cache_evictions_total",
    "Cache entries dropped by coarse capacity eviction"
);

gauge_accessor!(
    /// Entries currently stored across all solve caches.
    solve_cache_entries,
    "ags_solve_cache_entries",
    "Distinct entries currently stored in solve caches"
);

counter_accessor!(
    /// Grid points claimed by sweep workers (chunked claiming).
    sweep_points_claimed,
    "ags_sweep_points_claimed_total",
    "Grid points claimed by sweep workers"
);

histogram_accessor!(
    /// Wait between a worker finishing one chunk and holding the next.
    sweep_chunk_wait,
    "ags_sweep_chunk_wait_seconds",
    "Wall-clock gap between finishing a chunk and claiming the next (nondeterministic family)",
    CHUNK_WAIT_BOUNDS
);

counter_accessor!(
    /// Journal segments durably written (temp + fsync + rename + dir fsync).
    journal_segments,
    "ags_journal_segments_total",
    "Durable journal segments written"
);

histogram_accessor!(
    /// Wall-clock latency of one durable segment write, fsyncs included.
    journal_segment_write,
    "ags_journal_segment_write_seconds",
    "Durable segment write latency including fsync of segment and directory (nondeterministic family)",
    SEGMENT_WRITE_BOUNDS
);

counter_accessor!(
    /// Point solves retried after a caught panic.
    point_retries,
    "ags_point_retries_total",
    "Grid-point solves retried after a caught panic"
);

counter_accessor!(
    /// Points quarantined after exhausting their panic retry budget.
    point_quarantines,
    "ags_point_quarantines_total",
    "Grid points quarantined after exhausting panic retries"
);

counter_accessor!(
    /// Storage faults injected by the `fault-injection` test backend.
    /// Always zero in production (the backend is not even compiled).
    io_faults_injected,
    "ags_io_faults_injected_total",
    "Storage faults injected by the fault-injection filesystem backend"
);

counter_accessor!(
    /// Journal segments examined by `ags fsck` scrubs.
    fsck_segments_scanned,
    "ags_fsck_segments_scanned_total",
    "Journal segment files examined by fsck scrubs"
);

counter_accessor!(
    /// Journal segments removed by `ags fsck --repair`.
    fsck_segments_repaired,
    "ags_fsck_segments_repaired_total",
    "Journal segment files removed by fsck repairs (truncated to the consistent prefix)"
);

/// Resolves every accessor once, so an export lists every family even
/// when the run never exercised some site (scrapers then see a stable
/// schema; a zero is information, an absent family is not).
pub fn register_all() {
    sim_ticks();
    margin_violations();
    solve_iterations();
    solve_batch_occupancy();
    solve_lanes_converged();
    solve_cache_hits();
    solve_cache_misses();
    solve_cache_evictions();
    solve_cache_entries();
    sweep_points_claimed();
    sweep_chunk_wait();
    journal_segments();
    journal_segment_write();
    point_retries();
    point_quarantines();
    io_faults_injected();
    fsck_segments_scanned();
    fsck_segments_repaired();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_stable_handles() {
        // Same OnceLock, same underlying metric: bumping through one
        // handle is visible through another resolution of the accessor.
        let enabled_before = global().is_enabled();
        global().set_enabled(true);
        let before = sim_ticks().get();
        sim_ticks().inc();
        assert_eq!(sim_ticks().get(), before + 1);
        global().set_enabled(enabled_before);
    }

    #[test]
    fn bounds_are_strictly_increasing() {
        for bounds in [
            SOLVE_ITERATION_BOUNDS,
            SEGMENT_WRITE_BOUNDS,
            CHUNK_WAIT_BOUNDS,
            BATCH_OCCUPANCY_BOUNDS,
            LANES_CONVERGED_BOUNDS,
        ] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
