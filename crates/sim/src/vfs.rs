//! A minimal virtual filesystem seam for the durability stack.
//!
//! The journal's crash-safety claims (PR 4) and the serve daemon's
//! restart recovery (PR 8) were only ever exercised against clean
//! process death. Real storage fails in richer ways: a write tears
//! mid-buffer, an fsync returns `EIO`, a rename never lands, the disk
//! fills. This module introduces the one seam needed to *prove* the
//! stack against those faults deterministically: every durable-path
//! filesystem operation goes through the [`Fs`] trait, with two
//! backends —
//!
//! * [`StdFs`] — thin passthrough to `std::fs`, the production backend.
//!   All call sites receive it via [`std_fs`], a process-wide cached
//!   handle, so the indirection is one vtable call on paths that were
//!   already doing millisecond-scale I/O; the warm simulation tick
//!   never touches this module.
//! * `FaultyFs` (behind the `fault-injection` feature) — wraps `StdFs`
//!   with a deterministic mutating-operation counter and a scripted
//!   fault table, so a test can say "the 7th durable operation of this
//!   run tears" and replay it exactly. The crash-matrix harness
//!   (`tests/crash_matrix.rs`) enumerates every such operation across
//!   all journal kinds and faults each one in turn.
//!
//! Fault model (see DESIGN.md § Failure model): torn writes persist a
//! seeded prefix of the buffer; `ENOSPC` rejects the write with no
//! effect; fsync failures leave content written but report `EIO`;
//! rename failures leave the temp file in place; a `Crash` applies the
//! operation's partial effect and then fails *every* subsequent
//! operation, modeling process death at that instant.

use std::fmt::Debug;
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// The filesystem operations the durability stack performs.
///
/// Deliberately tiny: only what `Journal`, `TaskStore` and `fsck`
/// need. Implementations must be shareable across the campaign's
/// worker threads.
pub trait Fs: Send + Sync + Debug {
    /// Creates `path` and any missing parents, like
    /// [`std::fs::create_dir_all`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Creates (or truncates) `path` and writes `bytes` in full.
    /// Durability is *not* implied — pair with [`Fs::fsync`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure; an injected torn write
    /// may leave a prefix of `bytes` behind.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Flushes `path` (a file or, on Unix, a directory) to stable
    /// storage.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    fn fsync(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` over `to`, like [`std::fs::rename`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Reads the entire file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Lists the file names (not paths) inside the directory `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<String>>;

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// True when `path` exists (any kind).
    fn exists(&self, path: &Path) -> bool;
}

/// A shared, dynamically dispatched filesystem handle.
pub type DynFs = Arc<dyn Fs>;

/// The production backend: a thin passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

impl Fs for StdFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = File::create(path)?;
        file.write_all(bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        // Opening read-only works for both files and (on Unix)
        // directories, which is exactly the pair the journal syncs.
        File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(path)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The process-wide [`StdFs`] handle. Cached so every default
/// `DurableOptions`/`ServeConfig` shares one allocation.
#[must_use]
pub fn std_fs() -> DynFs {
    static FS: OnceLock<DynFs> = OnceLock::new();
    FS.get_or_init(|| Arc::new(StdFs)).clone()
}

/// Reads `path` through `fs` as UTF-8.
///
/// # Errors
///
/// Propagates the read failure; non-UTF-8 content maps to
/// [`io::ErrorKind::InvalidData`].
pub fn read_to_string(fs: &dyn Fs, path: &Path) -> io::Result<String> {
    let bytes = fs.read(path)?;
    String::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file is not UTF-8"))
}

#[cfg(feature = "fault-injection")]
pub use faulty::{FaultKind, FaultyFs, ALL_FAULTS};

#[cfg(feature = "fault-injection")]
mod faulty {
    use super::{Fs, StdFs};
    use crate::journal::fnv64;
    use crate::telemetry;
    use std::io;
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    /// The storage fault classes the crash matrix injects.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultKind {
        /// The write persists a seeded prefix of the buffer, then the
        /// operation fails and the process is treated as dead (every
        /// later operation fails) — a power cut mid-`write(2)`.
        TornWrite,
        /// The operation fails with `ENOSPC` and has no effect.
        Enospc,
        /// The fsync reports `EIO`; the file's content stays as
        /// written, but nothing was promised durable.
        FsyncFail,
        /// The rename reports `EIO`; the temp file stays in place.
        RenameFail,
        /// The operation's *partial* effect lands (a torn write, an
        /// fsync that loses the non-durable tail), then every
        /// subsequent operation fails — SIGKILL at this exact point.
        Crash,
    }

    /// Every [`FaultKind`], in the order the crash matrix sweeps them.
    pub const ALL_FAULTS: [FaultKind; 5] = [
        FaultKind::TornWrite,
        FaultKind::Enospc,
        FaultKind::FsyncFail,
        FaultKind::RenameFail,
        FaultKind::Crash,
    ];

    /// A deterministic fault-injecting wrapper around [`StdFs`].
    ///
    /// Mutating operations (`create_dir_all`, `write`, `fsync`,
    /// `rename`, `remove_file`) are numbered from 0 in call order; a
    /// scripted `(index, kind)` table decides which ones fail and how.
    /// With an empty script the wrapper is a pure counter — the crash
    /// matrix first runs fault-free to learn how many durable
    /// operations a campaign performs, then replays once per
    /// (operation, fault) pair.
    #[derive(Debug)]
    pub struct FaultyFs {
        inner: StdFs,
        seed: u64,
        ops: AtomicU64,
        script: Vec<(u64, FaultKind)>,
        crashed: AtomicBool,
        sticky_write_failures: AtomicBool,
    }

    impl FaultyFs {
        /// A wrapper injecting `script` faults, with `seed` driving
        /// torn-write prefix lengths.
        #[must_use]
        pub fn new(seed: u64, script: Vec<(u64, FaultKind)>) -> Arc<Self> {
            Arc::new(FaultyFs {
                inner: StdFs,
                seed,
                ops: AtomicU64::new(0),
                script,
                crashed: AtomicBool::new(false),
                sticky_write_failures: AtomicBool::new(false),
            })
        }

        /// Mutating operations observed so far.
        #[must_use]
        pub fn mutating_ops(&self) -> u64 {
            self.ops.load(Ordering::SeqCst)
        }

        /// True once a `TornWrite`/`Crash` fault fired: the simulated
        /// process is dead and every operation fails.
        #[must_use]
        pub fn has_crashed(&self) -> bool {
            self.crashed.load(Ordering::SeqCst)
        }

        /// Toggles persistent write failure: while set, every mutating
        /// operation fails with `ENOSPC` (reads still work). This is
        /// the degraded-serve scenario — a full disk that later frees.
        pub fn set_sticky_write_failures(&self, on: bool) {
            self.sticky_write_failures.store(on, Ordering::SeqCst);
        }

        /// The seeded torn prefix for operation `op` of a `len`-byte
        /// buffer: deterministic, strictly short of the full buffer.
        fn torn_len(&self, op: u64, len: usize) -> usize {
            if len == 0 {
                return 0;
            }
            let h = fnv64(&[self.seed.to_le_bytes(), op.to_le_bytes()].concat());
            (h as usize) % len
        }

        /// Accounts one mutating operation. Returns the fault
        /// scheduled for it, if any; errors when the simulated process
        /// is already dead or sticky write failure is on.
        fn mutating_op(&self) -> io::Result<Option<(u64, FaultKind)>> {
            if self.crashed.load(Ordering::SeqCst) {
                return Err(dead());
            }
            if self.sticky_write_failures.load(Ordering::SeqCst) {
                telemetry::io_faults_injected().inc();
                return Err(enospc());
            }
            let op = self.ops.fetch_add(1, Ordering::SeqCst);
            let fault = self
                .script
                .iter()
                .find(|(at, _)| *at == op)
                .map(|(_, kind)| (op, *kind));
            if fault.is_some() {
                telemetry::io_faults_injected().inc();
            }
            Ok(fault)
        }

        fn crash(&self) {
            self.crashed.store(true, Ordering::SeqCst);
        }
    }

    fn enospc() -> io::Error {
        // 28 is ENOSPC on Linux, the only platform the matrix runs on.
        io::Error::from_raw_os_error(28)
    }

    fn eio(what: &str) -> io::Error {
        io::Error::other(format!("injected fault: {what}"))
    }

    fn dead() -> io::Error {
        io::Error::other("injected fault: process crashed earlier in this run")
    }

    impl Fs for FaultyFs {
        fn create_dir_all(&self, path: &Path) -> io::Result<()> {
            match self.mutating_op()? {
                None => self.inner.create_dir_all(path),
                Some((_, FaultKind::Enospc)) => Err(enospc()),
                Some((_, FaultKind::Crash | FaultKind::TornWrite)) => {
                    self.crash();
                    Err(dead())
                }
                Some(_) => Err(eio("create_dir_all failed")),
            }
        }

        fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            match self.mutating_op()? {
                None => self.inner.write(path, bytes),
                Some((_, FaultKind::Enospc)) => Err(enospc()),
                Some((op, FaultKind::TornWrite)) => {
                    let _ = self
                        .inner
                        .write(path, &bytes[..self.torn_len(op, bytes.len())]);
                    self.crash();
                    Err(eio("torn write"))
                }
                Some((op, FaultKind::Crash)) => {
                    let _ = self
                        .inner
                        .write(path, &bytes[..self.torn_len(op, bytes.len())]);
                    self.crash();
                    Err(dead())
                }
                Some(_) => Err(eio("write failed")),
            }
        }

        fn fsync(&self, path: &Path) -> io::Result<()> {
            match self.mutating_op()? {
                None => self.inner.fsync(path),
                Some((_, FaultKind::Enospc)) => Err(enospc()),
                Some((_, FaultKind::FsyncFail | FaultKind::RenameFail | FaultKind::TornWrite)) => {
                    Err(eio("fsync failed"))
                }
                Some((op, FaultKind::Crash)) => {
                    // Crash before the flush completed: the file's
                    // un-synced tail is lost. Model it by truncating a
                    // regular file to a seeded prefix.
                    if path.is_file() {
                        if let Ok(full) = self.inner.read(path) {
                            let keep = self.torn_len(op, full.len());
                            let _ = self.inner.write(path, &full[..keep]);
                        }
                    }
                    self.crash();
                    Err(dead())
                }
            }
        }

        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            match self.mutating_op()? {
                None => self.inner.rename(from, to),
                Some((_, FaultKind::Enospc)) => Err(enospc()),
                Some((_, FaultKind::Crash | FaultKind::TornWrite)) => {
                    self.crash();
                    Err(dead())
                }
                Some(_) => Err(eio("rename failed")),
            }
        }

        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            if self.crashed.load(Ordering::SeqCst) {
                return Err(dead());
            }
            self.inner.read(path)
        }

        fn read_dir(&self, path: &Path) -> io::Result<Vec<String>> {
            if self.crashed.load(Ordering::SeqCst) {
                return Err(dead());
            }
            self.inner.read_dir(path)
        }

        fn remove_file(&self, path: &Path) -> io::Result<()> {
            match self.mutating_op()? {
                None => self.inner.remove_file(path),
                Some((_, FaultKind::Enospc)) => Err(enospc()),
                Some((_, FaultKind::Crash | FaultKind::TornWrite)) => {
                    self.crash();
                    Err(dead())
                }
                Some(_) => Err(eio("remove failed")),
            }
        }

        fn exists(&self, path: &Path) -> bool {
            self.inner.exists(path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("p7-vfs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_fs_round_trips() {
        let dir = tmp("std");
        let fs_handle = std_fs();
        let path = dir.join("a.txt");
        fs_handle.write(&path, b"hello").unwrap();
        fs_handle.fsync(&path).unwrap();
        assert_eq!(fs_handle.read(&path).unwrap(), b"hello");
        assert!(fs_handle.exists(&path));
        fs_handle.rename(&path, &dir.join("b.txt")).unwrap();
        assert!(!fs_handle.exists(&path));
        let names = fs_handle.read_dir(&dir).unwrap();
        assert_eq!(names, vec!["b.txt".to_owned()]);
        fs_handle.remove_file(&dir.join("b.txt")).unwrap();
        assert!(fs_handle.read_dir(&dir).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn faulty_fs_counts_and_injects() {
        let dir = tmp("faulty");
        // Script: op 1 (the second write) tears.
        let faulty = FaultyFs::new(7, vec![(1, FaultKind::TornWrite)]);
        let a = dir.join("a");
        let b = dir.join("b");
        faulty.write(&a, b"aaaa").unwrap();
        assert_eq!(faulty.mutating_ops(), 1);
        let err = faulty.write(&b, b"bbbbbbbb").unwrap_err();
        assert!(err.to_string().contains("torn write"));
        assert!(faulty.has_crashed());
        // A torn prefix landed, strictly shorter than the buffer.
        assert!(fs::read(&b).map_or(true, |v| v.len() < 8));
        // Dead processes cannot do anything any more.
        assert!(faulty.write(&a, b"x").is_err());
        assert!(faulty.read(&a).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn sticky_write_failures_toggle() {
        let dir = tmp("sticky");
        let faulty = FaultyFs::new(1, Vec::new());
        let p = dir.join("p");
        faulty.write(&p, b"1").unwrap();
        faulty.set_sticky_write_failures(true);
        let err = faulty.write(&p, b"2").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "expected ENOSPC");
        assert_eq!(faulty.read(&p).unwrap(), b"1", "reads still work");
        faulty.set_sticky_write_failures(false);
        faulty.write(&p, b"3").unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
