//! Measurement accumulation over simulation windows.

use crate::chip::SocketTick;
use p7_pdn::DropBreakdown;
use p7_types::{MegaHertz, Volts, Watts, CORES_PER_SOCKET, NUM_SOCKETS};
use serde::{Deserialize, Serialize};

/// Averaged observations for one socket over the measured windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocketMetrics {
    /// Mean chip Vdd power.
    pub avg_power: Watts,
    /// Mean rail set point.
    pub avg_set_point: Volts,
    /// Undervolt relative to the static nominal (positive = saving).
    pub undervolt: Volts,
    /// Mean delivered voltage per core.
    pub avg_core_voltage: [Volts; CORES_PER_SOCKET],
    /// Mean clock frequency per core.
    pub avg_core_freq: [MegaHertz; CORES_PER_SOCKET],
    /// Mean decomposed drop per core.
    pub drop: [DropBreakdown; CORES_PER_SOCKET],
    /// Mean total current.
    pub avg_current: p7_types::Amps,
}

impl SocketMetrics {
    /// Mean passive drop (loadline + IR) of core 0, the paper's
    /// presentation core for the Fig. 9 decomposition.
    #[must_use]
    pub fn core0_passive_drop(&self) -> Volts {
        self.drop[0].passive()
    }

    /// Mean drop of one core as a percentage of `nominal` (Fig. 7's
    /// y-axis), using the steady component the sample-mode CPMs see.
    #[must_use]
    pub fn core_drop_percent(&self, core: usize, nominal: Volts) -> f64 {
        self.drop[core].steady() / nominal * 100.0
    }
}

/// The result of a measured simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Per-socket averages.
    pub sockets: Vec<SocketMetrics>,
    /// Mean total server Vdd power (both chips).
    pub total_power: Watts,
    /// Mean clock over all *running* cores, server-wide.
    pub avg_running_freq: MegaHertz,
    /// Slowest mean clock among running cores.
    pub min_running_freq: MegaHertz,
    /// Number of measured windows (after warm-up).
    pub ticks_measured: usize,
}

impl RunSummary {
    /// Socket 0's metrics — the measured processor of the Sec. 3 studies.
    #[must_use]
    pub fn socket0(&self) -> &SocketMetrics {
        &self.sockets[0]
    }

    /// The mean frequency ratio relative to `target` (for the execution
    /// model).
    #[must_use]
    pub fn freq_ratio(&self, target: MegaHertz) -> f64 {
        self.avg_running_freq / target
    }
}

/// Accumulates per-tick observations into a [`RunSummary`].
#[derive(Debug, Clone)]
pub struct Accumulator {
    nominal: Volts,
    running_mask: [[bool; CORES_PER_SOCKET]; NUM_SOCKETS],
    ticks: usize,
    power: [f64; NUM_SOCKETS],
    set_point: [f64; NUM_SOCKETS],
    current: [f64; NUM_SOCKETS],
    core_v: [[f64; CORES_PER_SOCKET]; NUM_SOCKETS],
    core_f: [[f64; CORES_PER_SOCKET]; NUM_SOCKETS],
    drop: [[DropBreakdown; CORES_PER_SOCKET]; NUM_SOCKETS],
}

impl Accumulator {
    /// Creates an accumulator; `running_mask[s][c]` marks running cores.
    #[must_use]
    pub fn new(nominal: Volts, running_mask: [[bool; CORES_PER_SOCKET]; NUM_SOCKETS]) -> Self {
        Accumulator {
            nominal,
            running_mask,
            ticks: 0,
            power: [0.0; NUM_SOCKETS],
            set_point: [0.0; NUM_SOCKETS],
            current: [0.0; NUM_SOCKETS],
            core_v: [[0.0; CORES_PER_SOCKET]; NUM_SOCKETS],
            core_f: [[0.0; CORES_PER_SOCKET]; NUM_SOCKETS],
            drop: [[DropBreakdown::default(); CORES_PER_SOCKET]; NUM_SOCKETS],
        }
    }

    /// Folds in one window's per-socket ticks.
    pub fn add(&mut self, ticks: &[SocketTick]) {
        debug_assert_eq!(ticks.len(), NUM_SOCKETS);
        self.ticks += 1;
        for (s, t) in ticks.iter().enumerate() {
            self.power[s] += t.power.0;
            self.set_point[s] += t.set_point.0;
            self.current[s] += t.current.0;
            for c in 0..CORES_PER_SOCKET {
                self.core_v[s][c] += t.core_voltages[c].0;
                self.core_f[s][c] += t.core_freqs[c].0;
                let d = &mut self.drop[s][c];
                d.loadline += t.breakdown[c].loadline;
                d.ir_drop += t.breakdown[c].ir_drop;
                d.typical_didt += t.breakdown[c].typical_didt;
                d.worst_didt += t.breakdown[c].worst_didt;
            }
        }
    }

    /// Number of windows folded in so far.
    #[must_use]
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// Produces the summary; `None` when no windows were measured.
    #[must_use]
    pub fn finish(self) -> Option<RunSummary> {
        if self.ticks == 0 {
            return None;
        }
        let n = self.ticks as f64;
        let mut sockets = Vec::with_capacity(NUM_SOCKETS);
        let mut freq_sum = 0.0;
        let mut freq_count = 0usize;
        let mut min_freq = f64::MAX;
        for s in 0..NUM_SOCKETS {
            let avg_core_voltage: [Volts; CORES_PER_SOCKET] =
                std::array::from_fn(|c| Volts(self.core_v[s][c] / n));
            let avg_core_freq: [MegaHertz; CORES_PER_SOCKET] =
                std::array::from_fn(|c| MegaHertz(self.core_f[s][c] / n));
            let drop: [DropBreakdown; CORES_PER_SOCKET] = std::array::from_fn(|c| {
                let d = self.drop[s][c];
                DropBreakdown {
                    loadline: d.loadline / n,
                    ir_drop: d.ir_drop / n,
                    typical_didt: d.typical_didt / n,
                    worst_didt: d.worst_didt / n,
                }
            });
            #[allow(clippy::needless_range_loop)] // c co-indexes mask and freqs
            for c in 0..CORES_PER_SOCKET {
                if self.running_mask[s][c] {
                    freq_sum += avg_core_freq[c].0;
                    freq_count += 1;
                    min_freq = min_freq.min(avg_core_freq[c].0);
                }
            }
            let avg_set_point = Volts(self.set_point[s] / n);
            sockets.push(SocketMetrics {
                avg_power: Watts(self.power[s] / n),
                avg_set_point,
                undervolt: self.nominal - avg_set_point,
                avg_core_voltage,
                avg_core_freq,
                drop,
                avg_current: p7_types::Amps(self.current[s] / n),
            });
        }
        let total_power = Watts(sockets.iter().map(|s| s.avg_power.0).sum());
        let avg_running_freq = if freq_count > 0 {
            MegaHertz(freq_sum / freq_count as f64)
        } else {
            MegaHertz(0.0)
        };
        let min_running_freq = if freq_count > 0 {
            MegaHertz(min_freq)
        } else {
            MegaHertz(0.0)
        };
        Some(RunSummary {
            sockets,
            total_power,
            avg_running_freq,
            min_running_freq,
            ticks_measured: self.ticks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_sensors::CpmReading;
    use p7_types::Amps;

    fn fake_tick(power: f64, freq: f64) -> SocketTick {
        SocketTick {
            power: Watts(power),
            consumed_power: Watts(power),
            core_voltages: [Volts(1.15); 8],
            core_freqs: [MegaHertz(freq); 8],
            breakdown: [DropBreakdown {
                loadline: Volts(0.03),
                ir_drop: Volts(0.02),
                typical_didt: Volts(0.008),
                worst_didt: Volts(0.012),
            }; 8],
            min_on_freq: Some(MegaHertz(freq)),
            sticky_min_freq: Some(MegaHertz(freq)),
            cpm_sample: [CpmReading::MAX; 40],
            cpm_sticky: [CpmReading::MIN; 40],
            current: Amps(80.0),
            set_point: Volts(1.2),
        }
    }

    fn mask_first_k(k: usize) -> [[bool; 8]; 2] {
        let mut m = [[false; 8]; 2];
        for flag in m[0].iter_mut().take(k) {
            *flag = true;
        }
        m
    }

    #[test]
    fn empty_accumulator_finishes_none() {
        let acc = Accumulator::new(Volts(1.2), mask_first_k(1));
        assert!(acc.finish().is_none());
    }

    #[test]
    fn averages_are_exact_for_constant_input() {
        let mut acc = Accumulator::new(Volts(1.2), mask_first_k(2));
        for _ in 0..10 {
            acc.add(&[fake_tick(100.0, 4300.0), fake_tick(20.0, 4200.0)]);
        }
        let s = acc.finish().unwrap();
        assert_eq!(s.ticks_measured, 10);
        assert!((s.sockets[0].avg_power.0 - 100.0).abs() < 1e-9);
        assert!((s.total_power.0 - 120.0).abs() < 1e-9);
        assert!((s.avg_running_freq.0 - 4300.0).abs() < 1e-9);
        assert!((s.socket0().undervolt.millivolts() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_ticks_average_linearly() {
        let mut acc = Accumulator::new(Volts(1.2), mask_first_k(1));
        acc.add(&[fake_tick(90.0, 4200.0), fake_tick(20.0, 4200.0)]);
        acc.add(&[fake_tick(110.0, 4400.0), fake_tick(20.0, 4200.0)]);
        let s = acc.finish().unwrap();
        assert!((s.sockets[0].avg_power.0 - 100.0).abs() < 1e-9);
        assert!((s.avg_running_freq.0 - 4300.0).abs() < 1e-9);
    }

    #[test]
    fn drop_percent_uses_steady_component() {
        let mut acc = Accumulator::new(Volts(1.2), mask_first_k(1));
        acc.add(&[fake_tick(90.0, 4200.0), fake_tick(20.0, 4200.0)]);
        let s = acc.finish().unwrap();
        // steady = 30 + 20 + 8 = 58 mV of 1200 mV ≈ 4.83 %.
        let pct = s.socket0().core_drop_percent(0, Volts(1.2));
        assert!((pct - 4.8333).abs() < 0.01, "pct {pct}");
    }

    #[test]
    fn freq_ratio_relative_to_target() {
        let mut acc = Accumulator::new(Volts(1.2), mask_first_k(1));
        acc.add(&[fake_tick(90.0, 4410.0), fake_tick(20.0, 4200.0)]);
        let s = acc.finish().unwrap();
        assert!((s.freq_ratio(MegaHertz(4200.0)) - 1.05).abs() < 1e-9);
    }
}
