//! Durability layer for long-running campaigns: crash-consistent
//! journals, panic-isolated workers and cooperative cancellation.
//!
//! Real guardband characterization runs on machines that crash *by
//! design* — margin sweeps hang or reboot the target — so a campaign
//! that loses hours of completed grid points to one panic or a Ctrl-C is
//! unusable at production scale. This module gives the sweep and
//! resilience engines three ingredients:
//!
//! * [`Journal`] — a checksummed on-disk log of completed point results.
//!   Every checkpoint is one *segment* file written
//!   write-temp-then-rename and fsynced, so a crash at any instant
//!   leaves only whole, verifiable segments behind. A
//!   [`CampaignManifest`] written at creation pins the exact spec
//!   (canonical JSON + fingerprint + seed), and a resume refuses a
//!   journal whose manifest does not match.
//! * [`run_durable_indexed`] — the worker loop shared by both engines:
//!   per-point `catch_unwind` isolation with bounded backoff retries
//!   (a persistently panicking point is quarantined as a
//!   [`FailedPoint`] instead of killing the run), incremental journal
//!   checkpoints, and cooperative cancellation.
//! * [`CancelToken`] — a clonable flag the CLI wires to SIGINT/SIGTERM;
//!   workers observe it between points, the coordinator flushes the
//!   journal and the run returns [`SimError::Interrupted`].
//!
//! Determinism: the journal stores each completed point's serialized
//! result, and the JSON float form is Rust's shortest round-trip, so a
//! resumed campaign reconstructs bit-identical values and produces
//! byte-identical reports to an uninterrupted run at any worker count.

use crate::error::SimError;
use crate::telemetry;
use crate::vfs::{self, DynFs, Fs};
use p7_obs::trace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// On-disk journal format version; bumped on incompatible layout change.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// File name of the manifest inside a journal directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Magic tag on the first line of every segment file.
const SEGMENT_MAGIC: &str = "p7-journal-segment";

/// A clonable cooperative cancellation flag.
///
/// The CLI installs SIGINT/SIGTERM handlers that call
/// [`CancelToken::cancel`]; durable runs observe the token between
/// points, flush their journal and return [`SimError::Interrupted`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Only stores an atomic flag, so it is safe
    /// to call from a signal handler.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Bounded-retry policy for panicking points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per point (>= 1) before it is quarantined.
    pub max_attempts: usize,
    /// Base backoff before retry `k`, slept as `backoff_ms << (k - 1)`.
    pub backoff_ms: u64,
}

impl RetryPolicy {
    /// The default campaign policy: three attempts, 10 ms base backoff.
    #[must_use]
    pub fn power7plus() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms: 10,
        }
    }

    /// A single attempt, no backoff — quarantine on the first panic.
    #[must_use]
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_ms: 0,
        }
    }

    /// The sleep before retry attempt `attempt` (1-based failed tries).
    #[must_use]
    pub fn backoff_before(&self, attempt: usize) -> Duration {
        let shift = u32::try_from(attempt.saturating_sub(1)).unwrap_or(u32::MAX);
        Duration::from_millis(self.backoff_ms.checked_shl(shift).unwrap_or(u64::MAX))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::power7plus()
    }
}

/// A grid point (or campaign cell) that kept panicking after bounded
/// retries and was quarantined instead of aborting the run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailedPoint {
    /// Grid/cell index in the spec's deterministic expansion order.
    pub index: usize,
    /// How many attempts were made before quarantining.
    pub attempts: usize,
    /// The panic payload of the final attempt.
    pub reason: String,
}

/// Renders the quarantine section (`quarantined <what> (N):` plus one
/// line per point), exactly as the CLI prints it after a report table.
/// Empty when nothing failed, so healthy runs keep their exact
/// historical stdout. Shared by `ags` and the `ags serve` daemon.
#[must_use]
pub fn render_failed(failed: &[FailedPoint], what: &str) -> String {
    use std::fmt::Write as _;
    if failed.is_empty() {
        return String::new();
    }
    let mut out = format!("quarantined {what} ({}):\n", failed.len());
    for f in failed {
        let _ = writeln!(
            out,
            "{:>5}  after {} attempt{}: {}",
            f.index,
            f.attempts,
            if f.attempts == 1 { "" } else { "s" },
            f.reason
        );
    }
    out
}

/// The identity of a campaign, written once at journal creation.
///
/// A resume compares the on-disk manifest against the manifest derived
/// from the spec being run; any mismatch (different spec JSON, seed or
/// campaign kind) refuses the journal, so stale results can never leak
/// into a different campaign's report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Campaign family: `"sweep"` or `"resilience"`.
    pub kind: String,
    /// On-disk format version ([`JOURNAL_FORMAT_VERSION`]).
    pub format_version: u32,
    /// The spec's master seed, duplicated out of the JSON for cheap
    /// mismatch messages.
    pub seed: u64,
    /// FNV-1a fingerprint of `spec_json`.
    pub fingerprint: u64,
    /// The canonical JSON of the full spec, so `--resume` can rebuild
    /// the campaign without re-supplying flags.
    pub spec_json: String,
}

impl CampaignManifest {
    /// Builds the manifest of a campaign from its canonical spec JSON.
    #[must_use]
    pub fn new(kind: &str, seed: u64, spec_json: String) -> Self {
        CampaignManifest {
            kind: kind.to_owned(),
            format_version: JOURNAL_FORMAT_VERSION,
            seed,
            fingerprint: fnv64(spec_json.as_bytes()),
            spec_json,
        }
    }

    /// Checks that `on_disk` describes the same campaign as `self`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Journal`] naming the first mismatching field.
    pub fn ensure_matches(&self, on_disk: &CampaignManifest) -> Result<(), SimError> {
        let refuse = |reason: String| Err(SimError::Journal { reason });
        if on_disk.format_version != self.format_version {
            return refuse(format!(
                "journal format v{} does not match this binary's v{}",
                on_disk.format_version, self.format_version
            ));
        }
        if on_disk.kind != self.kind {
            return refuse(format!(
                "journal belongs to a `{}` campaign, not `{}`",
                on_disk.kind, self.kind
            ));
        }
        if on_disk.seed != self.seed {
            return refuse(format!(
                "journal seed {} does not match spec seed {}",
                on_disk.seed, self.seed
            ));
        }
        if on_disk.fingerprint != self.fingerprint || on_disk.spec_json != self.spec_json {
            return refuse(format!(
                "journal spec fingerprint {:016x} does not match this spec's {:016x}; \
                 resuming a different spec would corrupt the report",
                on_disk.fingerprint, self.fingerprint
            ));
        }
        Ok(())
    }
}

/// How a durable run uses its on-disk journal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum JournalMode {
    /// No journal: the run is all-or-nothing (the pre-durability
    /// behavior, and the allocation-free hot path).
    #[default]
    Off,
    /// Create a fresh journal at the directory; refuses a directory that
    /// already holds a manifest.
    Start(PathBuf),
    /// Resume from an existing journal after verifying its manifest,
    /// then keep appending to it.
    Resume(PathBuf),
}

/// Shared knobs of a durable run (journal, cancellation, retries).
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Where completed points are checkpointed, if anywhere.
    pub journal: JournalMode,
    /// Cooperative cancellation flag (wire to SIGINT/SIGTERM).
    pub cancel: CancelToken,
    /// Panic retry/quarantine policy.
    pub retry: RetryPolicy,
    /// Completed points per checkpoint segment; 0 means
    /// [`DEFAULT_CHECKPOINT_EVERY`].
    pub checkpoint_every: usize,
    /// The filesystem backend the journal writes through. Defaults to
    /// the real [`crate::vfs::StdFs`]; the crash matrix substitutes a
    /// fault-injecting one.
    pub fs: DynFs,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            journal: JournalMode::default(),
            cancel: CancelToken::default(),
            retry: RetryPolicy::default(),
            checkpoint_every: 0,
            fs: vfs::std_fs(),
        }
    }
}

/// Default number of completed points per journal segment.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 16;

impl DurableOptions {
    /// Options that journal into `dir` (fresh run).
    #[must_use]
    pub fn journaled(dir: impl Into<PathBuf>) -> Self {
        DurableOptions {
            journal: JournalMode::Start(dir.into()),
            ..DurableOptions::default()
        }
    }

    /// Options that resume from the journal at `dir`.
    #[must_use]
    pub fn resumed(dir: impl Into<PathBuf>) -> Self {
        DurableOptions {
            journal: JournalMode::Resume(dir.into()),
            ..DurableOptions::default()
        }
    }

    /// The effective checkpoint interval.
    #[must_use]
    pub fn checkpoint_interval(&self) -> usize {
        if self.checkpoint_every == 0 {
            DEFAULT_CHECKPOINT_EVERY
        } else {
            self.checkpoint_every
        }
    }
}

/// A crash-consistent, checksummed on-disk journal of `(index, result)`
/// entries.
///
/// Layout: a directory holding `manifest.json` plus numbered segment
/// files `seg-00000000.json`, each written atomically
/// (write-temp-then-rename, fsynced file and directory). A segment's
/// first line carries an FNV-1a checksum of its JSON payload, so a
/// half-written or bit-rotted segment is detected and skipped on load —
/// its points simply re-run.
#[derive(Debug)]
pub struct Journal<T> {
    dir: PathBuf,
    next_segment: u64,
    fs: DynFs,
    _entries: PhantomData<fn() -> T>,
}

impl<T: Serialize + Deserialize> Journal<T> {
    /// Creates a fresh journal directory and durably writes `manifest`,
    /// through the real filesystem.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Journal`] when the directory already holds a
    /// manifest (use [`Journal::resume`]) or on any I/O failure.
    pub fn create(dir: &Path, manifest: &CampaignManifest) -> Result<Self, SimError> {
        Journal::create_with(dir, manifest, vfs::std_fs())
    }

    /// [`Journal::create`] through an explicit filesystem backend.
    ///
    /// # Errors
    ///
    /// As [`Journal::create`].
    pub fn create_with(
        dir: &Path,
        manifest: &CampaignManifest,
        fs: DynFs,
    ) -> Result<Self, SimError> {
        if fs.exists(&dir.join(MANIFEST_FILE)) {
            return Err(SimError::Journal {
                reason: format!(
                    "`{}` already holds a journal; pass it to --resume instead",
                    dir.display()
                ),
            });
        }
        fs.create_dir_all(dir)
            .map_err(|e| io_error(dir, "create journal directory", &e))?;
        let text = serde::json::to_string(manifest);
        write_atomic(&*fs, &dir.join(MANIFEST_FILE), text.as_bytes())?;
        Ok(Journal {
            dir: dir.to_owned(),
            next_segment: 0,
            fs,
            _entries: PhantomData,
        })
    }

    /// Opens an existing journal through the real filesystem, verifies
    /// its manifest against `expected`, and loads every intact
    /// segment's entries.
    ///
    /// Corrupt or truncated segments (a crash mid-checkpoint) are
    /// skipped — their points re-run — and reported in
    /// [`ResumedJournal::skipped_segments`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Journal`] when the directory holds no
    /// readable manifest or the manifest mismatches `expected`.
    pub fn resume(dir: &Path, expected: &CampaignManifest) -> Result<ResumedJournal<T>, SimError> {
        Journal::resume_with(dir, expected, vfs::std_fs())
    }

    /// [`Journal::resume`] through an explicit filesystem backend.
    ///
    /// # Errors
    ///
    /// As [`Journal::resume`].
    pub fn resume_with(
        dir: &Path,
        expected: &CampaignManifest,
        fs: DynFs,
    ) -> Result<ResumedJournal<T>, SimError> {
        let on_disk = read_manifest_with(dir, &*fs)?;
        expected.ensure_matches(&on_disk)?;
        let mut names: Vec<String> = fs
            .read_dir(dir)
            .map_err(|e| io_error(dir, "list journal", &e))?
            .into_iter()
            .filter(|name| name.starts_with("seg-") && name.ends_with(".json"))
            .collect();
        names.sort_unstable();
        let mut entries = Vec::new();
        let mut skipped = 0usize;
        let mut max_segment = None::<u64>;
        for name in &names {
            if let Some(number) = segment_number(name) {
                max_segment = Some(max_segment.map_or(number, |m| m.max(number)));
            }
            match read_segment::<T>(&*fs, &dir.join(name)) {
                Ok(mut batch) => entries.append(&mut batch),
                Err(_) => skipped += 1,
            }
        }
        Ok(ResumedJournal {
            journal: Journal {
                dir: dir.to_owned(),
                next_segment: max_segment.map_or(0, |m| m + 1),
                fs,
                _entries: PhantomData,
            },
            entries,
            skipped_segments: skipped,
        })
    }

    /// Durably appends one segment holding `entries`. A no-op for an
    /// empty batch.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Journal`] on any I/O failure.
    pub fn append(&mut self, entries: &[(usize, T)]) -> Result<(), SimError> {
        if entries.is_empty() {
            return Ok(());
        }
        let body = serde::json::to_string(&entries);
        let content = format!(
            "{SEGMENT_MAGIC} v{JOURNAL_FORMAT_VERSION} crc={:016x} entries={}\n{body}",
            fnv64(body.as_bytes()),
            entries.len()
        );
        let name = format!("seg-{:08}.json", self.next_segment);
        let _span = trace::span("journal_segment", self.next_segment);
        let started = Instant::now();
        write_atomic(&*self.fs, &self.dir.join(name), content.as_bytes())?;
        telemetry::journal_segment_write().observe(started.elapsed().as_secs_f64());
        telemetry::journal_segments().inc();
        self.next_segment += 1;
        Ok(())
    }

    /// The journal directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl JournalMode {
    /// Opens the journal this mode describes: [`JournalMode::Off`]
    /// yields none, [`JournalMode::Start`] creates a fresh journal
    /// stamped with `manifest`, [`JournalMode::Resume`] verifies the
    /// on-disk manifest and recovers every intact segment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Journal`] as [`Journal::create`] /
    /// [`Journal::resume`] do.
    pub fn open<T: Serialize + Deserialize>(
        &self,
        manifest: &CampaignManifest,
    ) -> Result<OpenedJournal<T>, SimError> {
        self.open_with(manifest, vfs::std_fs())
    }

    /// [`JournalMode::open`] through an explicit filesystem backend.
    ///
    /// # Errors
    ///
    /// As [`JournalMode::open`].
    pub fn open_with<T: Serialize + Deserialize>(
        &self,
        manifest: &CampaignManifest,
        fs: DynFs,
    ) -> Result<OpenedJournal<T>, SimError> {
        match self {
            JournalMode::Off => Ok(OpenedJournal {
                journal: None,
                entries: Vec::new(),
                skipped_segments: 0,
            }),
            JournalMode::Start(dir) => Ok(OpenedJournal {
                journal: Some(Journal::create_with(dir, manifest, fs)?),
                entries: Vec::new(),
                skipped_segments: 0,
            }),
            JournalMode::Resume(dir) => {
                let resumed = Journal::resume_with(dir, manifest, fs)?;
                Ok(OpenedJournal {
                    journal: Some(resumed.journal),
                    entries: resumed.entries,
                    skipped_segments: resumed.skipped_segments,
                })
            }
        }
    }
}

/// The journal handle and recovered state produced by
/// [`JournalMode::open`].
#[derive(Debug)]
pub struct OpenedJournal<T> {
    /// The journal to append checkpoints to, if journaling is on.
    pub journal: Option<Journal<T>>,
    /// Entries recovered on resume (empty for `Off`/`Start`).
    pub entries: Vec<(usize, T)>,
    /// Segments skipped as corrupt on resume.
    pub skipped_segments: usize,
}

/// A [`Journal`] reopened for resume, with its recovered entries.
#[derive(Debug)]
pub struct ResumedJournal<T> {
    /// The journal, positioned to append after the last intact segment.
    pub journal: Journal<T>,
    /// Every `(index, result)` recovered from intact segments.
    pub entries: Vec<(usize, T)>,
    /// Segments dropped for a checksum/parse failure (crash tails).
    pub skipped_segments: usize,
}

/// Reads and parses a journal directory's manifest.
///
/// # Errors
///
/// Returns [`SimError::Journal`] when the directory holds no readable,
/// well-formed manifest.
pub fn read_manifest(dir: &Path) -> Result<CampaignManifest, SimError> {
    read_manifest_with(dir, &*vfs::std_fs())
}

/// [`read_manifest`] through an explicit filesystem backend.
///
/// # Errors
///
/// As [`read_manifest`].
pub fn read_manifest_with(dir: &Path, fs: &dyn Fs) -> Result<CampaignManifest, SimError> {
    let path = dir.join(MANIFEST_FILE);
    let text = vfs::read_to_string(fs, &path).map_err(|e| io_error(&path, "read manifest", &e))?;
    serde::json::from_str(&text).map_err(|e| SimError::Journal {
        reason: format!("corrupt manifest `{}`: {e}", path.display()),
    })
}

fn segment_number(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

fn read_segment<T: Deserialize>(fs: &dyn Fs, path: &Path) -> Result<Vec<(usize, T)>, SimError> {
    let text = vfs::read_to_string(fs, path).map_err(|e| io_error(path, "read segment", &e))?;
    let corrupt = |what: &str| SimError::Journal {
        reason: format!("corrupt segment `{}`: {what}", path.display()),
    };
    let (header, body) = text.split_once('\n').ok_or_else(|| corrupt("no header"))?;
    let mut fields = header.split(' ');
    if fields.next() != Some(SEGMENT_MAGIC) {
        return Err(corrupt("bad magic"));
    }
    let crc = fields
        .find_map(|f| f.strip_prefix("crc="))
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .ok_or_else(|| corrupt("no checksum"))?;
    if fnv64(body.as_bytes()) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    serde::json::from_str(body).map_err(|e| corrupt(&e.to_string()))
}

fn io_error(path: &Path, action: &str, e: &std::io::Error) -> SimError {
    SimError::Journal {
        reason: format!("cannot {action} `{}`: {e}", path.display()),
    }
}

/// Atomic durable write: temp file in the same directory, fsync, rename
/// over the final name, fsync the directory.
pub(crate) fn write_atomic(fs: &dyn Fs, path: &Path, bytes: &[u8]) -> Result<(), SimError> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs.write(&tmp, bytes)
        .map_err(|e| io_error(&tmp, "write", &e))?;
    fs.fsync(&tmp).map_err(|e| io_error(&tmp, "fsync", &e))?;
    fs.rename(&tmp, path)
        .map_err(|e| io_error(path, "rename into", &e))?;
    // Make the rename itself durable. Directories open read-only on
    // Unix; elsewhere this is best-effort.
    let _ = fs.fsync(dir);
    Ok(())
}

/// FNV-1a, the workspace's standard cheap fingerprint (same constants as
/// the sweep module's seed derivation).
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The merged output of one durable run.
#[derive(Debug)]
pub(crate) struct DurableOutcome<T> {
    /// Per-index results; `None` marks a quarantined point (its
    /// [`FailedPoint`] is in `failed`).
    pub results: Vec<Option<T>>,
    /// Quarantined points, ordered by index.
    pub failed: Vec<FailedPoint>,
}

/// What one point's isolated attempt loop produced. `Done`'s flag is
/// the solver's journal-worthiness verdict: `false` marks a result that
/// is free to reproduce (a memoization hit), so checkpointing it would
/// cost I/O and buy no durability.
enum Solved<T> {
    Done(T, bool),
    Hard(SimError),
    Quarantined(FailedPoint),
}

/// Runs `f` over `0..n` like `sweep::run_indexed_with`, adding the
/// durability contract: per-point panic isolation with retries and
/// quarantine, resume (indices in `completed` are not re-run),
/// incremental journal checkpoints and cooperative cancellation. `f`
/// returns its result plus a journal-worthiness flag; results flagged
/// `false` (memoization hits, free to reproduce) merge into the report
/// but are never checkpointed.
///
/// Results are merged by index regardless of scheduling, so — given the
/// same spec — the outcome is identical at any worker count and across
/// any interrupt/resume split.
///
/// # Errors
///
/// Returns the lowest-indexed hard [`SimError`] raised by `f`, a
/// [`SimError::Journal`] if checkpointing fails, or
/// [`SimError::Interrupted`] when `opts.cancel` fired; in every error
/// case all completed results have already been flushed to the journal.
pub(crate) fn run_durable_indexed<S, T, I, F>(
    jobs: usize,
    n: usize,
    chunk: usize,
    init: I,
    f: F,
    opened: OpenedJournal<T>,
    opts: &DurableOptions,
) -> Result<DurableOutcome<T>, SimError>
where
    T: Send + Sync + Clone + Serialize + Deserialize,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> Result<(T, bool), SimError> + Sync,
{
    let OpenedJournal {
        journal: mut journal_store,
        entries: completed,
        ..
    } = opened;
    let mut journal = journal_store.as_mut();
    let chunk = chunk.max(1);
    let jobs = crate::sweep::resolve_jobs(jobs).min(n.max(1));
    let checkpoint_every = opts.checkpoint_interval();
    let done: HashMap<usize, &T> = completed
        .iter()
        .filter(|(idx, _)| *idx < n)
        .map(|(idx, value)| (*idx, value))
        .collect();

    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut failed: Vec<FailedPoint> = Vec::new();
    let mut first_error: Option<(usize, SimError)> = None;
    let mut pending: Vec<(usize, T)> = Vec::new();
    let mut journal_error: Option<SimError> = None;

    // One place handles every solved point, serial or parallel: merge
    // into the index slot, stage journal entries, flush full segments.
    let mut absorb = |idx: usize,
                      solved: Solved<T>,
                      results: &mut Vec<Option<T>>,
                      failed: &mut Vec<FailedPoint>,
                      first_error: &mut Option<(usize, SimError)>,
                      pending: &mut Vec<(usize, T)>,
                      journal_error: &mut Option<SimError>| {
        match solved {
            Solved::Done(value, journal_worthy) => {
                if journal_worthy && journal.is_some() && journal_error.is_none() {
                    pending.push((idx, value.clone()));
                }
                results[idx] = Some(value);
            }
            Solved::Hard(e) => {
                if first_error.as_ref().is_none_or(|(lowest, _)| idx < *lowest) {
                    *first_error = Some((idx, e));
                }
            }
            Solved::Quarantined(point) => failed.push(point),
        }
        if pending.len() >= checkpoint_every {
            if let Some(j) = journal.as_deref_mut() {
                if let Err(e) = j.append(pending) {
                    // Stop staging (and cancel workers): results keep
                    // merging, but the run reports the I/O failure.
                    *journal_error = Some(e);
                    opts.cancel.cancel();
                }
            }
            pending.clear();
        }
    };

    if jobs <= 1 {
        let mut state = init();
        for idx in 0..n {
            if opts.cancel.is_cancelled() {
                break;
            }
            if done.contains_key(&idx) {
                continue;
            }
            telemetry::sweep_points_claimed().inc();
            let solved = {
                let span = trace::span("sweep_point", idx as u64);
                let _ctx = span.push();
                attempt_point(&f, &mut state, idx, &opts.retry, &init)
            };
            absorb(
                idx,
                solved,
                &mut results,
                &mut failed,
                &mut first_error,
                &mut pending,
                &mut journal_error,
            );
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Solved<T>)>();
        // Workers inherit the coordinator's trace context (the campaign
        // root) so span trees parent identically at any worker count.
        let ctx = trace::current_context();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let tx = tx.clone();
                let (f, init, done, next, cancel) = (&f, &init, &done, &next, &opts.cancel);
                let retry = &opts.retry;
                scope.spawn(move || {
                    let _tctx = trace::push_context(ctx);
                    let mut state = init();
                    let mut ready_at = Instant::now();
                    let mut work = || loop {
                        if cancel.is_cancelled() {
                            return;
                        }
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            return;
                        }
                        telemetry::sweep_chunk_wait().observe(ready_at.elapsed().as_secs_f64());
                        for idx in start..(start + chunk).min(n) {
                            if cancel.is_cancelled() {
                                return;
                            }
                            if done.contains_key(&idx) {
                                continue;
                            }
                            telemetry::sweep_points_claimed().inc();
                            let solved = {
                                let span = trace::span("sweep_point", idx as u64);
                                let _ctx = span.push();
                                attempt_point(f, &mut state, idx, retry, init)
                            };
                            if tx.send((idx, solved)).is_err() {
                                return;
                            }
                        }
                        ready_at = Instant::now();
                    };
                    work();
                    // Scoped joins may return before TLS destructors run;
                    // flush the span ring here or the coordinator's
                    // collect can miss this worker's events.
                    trace::flush();
                });
            }
            drop(tx);
            // The coordinator drains while workers run, so checkpoints
            // land as points complete, not at the end.
            for (idx, solved) in rx {
                absorb(
                    idx,
                    solved,
                    &mut results,
                    &mut failed,
                    &mut first_error,
                    &mut pending,
                    &mut journal_error,
                );
            }
        });
    }

    // Final flush: whatever completed since the last full segment.
    if journal_error.is_none() {
        if let Some(j) = journal.as_deref_mut() {
            if let Err(e) = j.append(&pending) {
                journal_error = Some(e);
            }
        }
    }
    if let Some(e) = journal_error {
        return Err(e);
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    if opts.cancel.is_cancelled() {
        return Err(SimError::Interrupted {
            journal: journal.map(|j| j.dir().display().to_string()),
        });
    }

    // Resumed entries fill their slots last, so a fresh solve of the
    // same index (impossible, but harmless) would not be overwritten.
    for (idx, value) in completed {
        if idx < n && results[idx].is_none() {
            results[idx] = Some(value);
        }
    }
    failed.sort_unstable_by_key(|p| p.index);
    Ok(DurableOutcome { results, failed })
}

/// One point's isolated attempt loop: `catch_unwind` around `f`, bounded
/// backoff retries, quarantine after the final panic. A hard `SimError`
/// is returned immediately — the solve is deterministic, so config
/// errors do not benefit from retries. The worker's scratch state is
/// rebuilt after every caught panic, since the unwound solve may have
/// left it mid-tick.
fn attempt_point<S, T, I, F>(
    f: &F,
    state: &mut S,
    idx: usize,
    retry: &RetryPolicy,
    init: &I,
) -> Solved<T>
where
    I: Fn() -> S,
    F: Fn(&mut S, usize) -> Result<(T, bool), SimError>,
{
    let attempts = retry.max_attempts.max(1);
    let mut reason = String::new();
    for attempt in 1..=attempts {
        match catch_unwind(AssertUnwindSafe(|| f(state, idx))) {
            Ok(Ok((value, journal_worthy))) => return Solved::Done(value, journal_worthy),
            Ok(Err(e)) => return Solved::Hard(e),
            Err(payload) => {
                reason = panic_message(payload.as_ref());
                *state = init();
                if attempt < attempts {
                    telemetry::point_retries().inc();
                    std::thread::sleep(retry.backoff_before(attempt));
                }
            }
        }
    }
    telemetry::point_quarantines().inc();
    Solved::Quarantined(FailedPoint {
        index: idx,
        attempts,
        reason,
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("p7-journal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest() -> CampaignManifest {
        CampaignManifest::new("sweep", 42, "{\"spec\":true}".to_owned())
    }

    /// An [`OpenedJournal`] with no backing journal, as `JournalMode::Off`
    /// (or a resume whose journal handle the test does not need) yields.
    fn recovered<T>(entries: Vec<(usize, T)>) -> OpenedJournal<T> {
        OpenedJournal {
            journal: None,
            entries,
            skipped_segments: 0,
        }
    }

    /// An [`OpenedJournal`] appending to `journal`, as `JournalMode::Start`
    /// yields.
    fn journaling<T>(journal: Journal<T>) -> OpenedJournal<T> {
        OpenedJournal {
            journal: Some(journal),
            entries: Vec::new(),
            skipped_segments: 0,
        }
    }

    #[test]
    fn cancel_token_round_trip() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn retry_backoff_doubles() {
        let retry = RetryPolicy {
            max_attempts: 4,
            backoff_ms: 10,
        };
        assert_eq!(retry.backoff_before(1), Duration::from_millis(10));
        assert_eq!(retry.backoff_before(3), Duration::from_millis(40));
        assert_eq!(RetryPolicy::no_retry().backoff_before(1), Duration::ZERO);
    }

    #[test]
    fn manifest_matching_refuses_every_mismatch() {
        let m = manifest();
        assert!(m.ensure_matches(&m.clone()).is_ok());
        let mut other = m.clone();
        other.kind = "resilience".to_owned();
        assert!(matches!(
            m.ensure_matches(&other),
            Err(SimError::Journal { .. })
        ));
        let mut other = m.clone();
        other.seed = 7;
        assert!(m.ensure_matches(&other).is_err());
        let other = CampaignManifest::new("sweep", 42, "{\"spec\":false}".to_owned());
        assert!(m.ensure_matches(&other).is_err());
        let mut other = m.clone();
        other.format_version += 1;
        assert!(m.ensure_matches(&other).is_err());
    }

    #[test]
    fn journal_round_trips_segments() {
        let dir = tmp_dir("round-trip");
        let m = manifest();
        let mut journal: Journal<(usize, f64)> = Journal::create(&dir, &m).unwrap();
        journal.append(&[(0, (0, 1.5)), (2, (2, -0.25))]).unwrap();
        journal.append(&[]).unwrap(); // no-op, no file
        journal.append(&[(1, (1, 0.1))]).unwrap();

        // A second create on the same directory must refuse.
        assert!(matches!(
            Journal::<(usize, f64)>::create(&dir, &m),
            Err(SimError::Journal { .. })
        ));

        let resumed = Journal::<(usize, f64)>::resume(&dir, &m).unwrap();
        assert_eq!(resumed.skipped_segments, 0);
        assert_eq!(
            resumed.entries,
            vec![(0, (0, 1.5)), (2, (2, -0.25)), (1, (1, 0.1))]
        );
        // New segments continue after the recovered ones.
        assert_eq!(resumed.journal.next_segment, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segments_are_skipped_not_fatal() {
        let dir = tmp_dir("corrupt");
        let m = manifest();
        let mut journal: Journal<usize> = Journal::create(&dir, &m).unwrap();
        journal.append(&[(0, 10)]).unwrap();
        journal.append(&[(1, 11)]).unwrap();
        // Flip a byte in the second segment's payload.
        let seg = dir.join("seg-00000001.json");
        let mut text = fs::read_to_string(&seg).unwrap();
        text.push_str("garbage");
        fs::write(&seg, text).unwrap();
        // And drop a truncated crash-tail with no newline at all.
        fs::write(dir.join("seg-00000002.json"), "p7-journal-seg").unwrap();

        let resumed = Journal::<usize>::resume(&dir, &m).unwrap();
        assert_eq!(resumed.entries, vec![(0, 10)]);
        assert_eq!(resumed.skipped_segments, 2);
        // Appending never reuses a recovered (even corrupt) segment name.
        assert_eq!(resumed.journal.next_segment, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_refuses_wrong_manifest_and_missing_journal() {
        let dir = tmp_dir("mismatch");
        let m = manifest();
        let _journal: Journal<usize> = Journal::create(&dir, &m).unwrap();
        let other = CampaignManifest::new("sweep", 43, "{\"spec\":true}".to_owned());
        let err = Journal::<usize>::resume(&dir, &other).unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");
        assert!(Journal::<usize>::resume(&tmp_dir("absent"), &m).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_run_quarantines_and_resumes() {
        let opts = DurableOptions {
            retry: RetryPolicy::no_retry(),
            ..DurableOptions::default()
        };
        // Index 3 always panics; indices 0 and 5 were already completed.
        let completed = vec![(0usize, 100usize), (5, 105)];
        let ran = std::sync::Mutex::new(Vec::new());
        let out = run_durable_indexed(
            2,
            8,
            2,
            || (),
            |(), idx| {
                ran.lock().unwrap().push(idx);
                assert!(idx != 3, "injected panic at index 3");
                Ok((idx + 100, true))
            },
            recovered(completed),
            &opts,
        )
        .unwrap();
        assert_eq!(out.failed.len(), 1);
        assert_eq!(out.failed[0].index, 3);
        assert_eq!(out.failed[0].attempts, 1);
        assert!(out.failed[0].reason.contains("injected panic"));
        for idx in 0..8 {
            if idx == 3 {
                assert!(out.results[idx].is_none());
            } else {
                assert_eq!(out.results[idx], Some(idx + 100));
            }
        }
        let ran = ran.into_inner().unwrap();
        assert!(!ran.contains(&0) && !ran.contains(&5), "resumed re-ran");
    }

    #[test]
    fn durable_run_reports_lowest_indexed_hard_error() {
        let opts = DurableOptions::default();
        let err = run_durable_indexed::<_, usize, _, _>(
            3,
            6,
            1,
            || (),
            |(), idx| {
                if idx % 2 == 1 {
                    Err(SimError::InvalidAssignment {
                        reason: format!("boom {idx}"),
                    })
                } else {
                    Ok((idx, true))
                }
            },
            recovered(Vec::new()),
            &opts,
        )
        .unwrap_err();
        assert!(err.to_string().contains("boom 1"), "{err}");
    }

    #[test]
    fn cancelled_run_flushes_journal_and_reports_interrupted() {
        let dir = tmp_dir("cancelled");
        let m = manifest();
        let journal: Journal<usize> = Journal::create(&dir, &m).unwrap();
        let opts = DurableOptions {
            checkpoint_every: 1,
            ..DurableOptions::default()
        };
        let cancel = opts.cancel.clone();
        let err = run_durable_indexed(
            1,
            10,
            1,
            || (),
            |(), idx| {
                if idx == 4 {
                    cancel.cancel();
                }
                Ok((idx * 2, true))
            },
            journaling(journal),
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Interrupted { journal: Some(_) }));
        let resumed = Journal::<usize>::resume(&dir, &m).unwrap();
        // Points 0..=4 completed (the cancelling point included) and
        // were flushed before the run returned.
        assert_eq!(
            resumed.entries,
            (0..5).map(|i| (i, i * 2)).collect::<Vec<_>>()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unworthy_results_merge_but_are_not_checkpointed() {
        let dir = tmp_dir("hits");
        let m = manifest();
        let journal: Journal<usize> = Journal::create(&dir, &m).unwrap();
        let opts = DurableOptions {
            checkpoint_every: 1,
            ..DurableOptions::default()
        };
        // Odd indices are "memoization hits": free to reproduce, so the
        // journal must skip them while the report still includes them.
        let out = run_durable_indexed(
            1,
            6,
            1,
            || (),
            |(), idx| Ok((idx, idx % 2 == 0)),
            journaling(journal),
            &opts,
        )
        .unwrap();
        assert_eq!(out.results.iter().flatten().count(), 6);
        let resumed = Journal::<usize>::resume(&dir, &m).unwrap();
        assert_eq!(resumed.entries, vec![(0, 0), (2, 2), (4, 4)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_retries_rebuild_worker_state() {
        // The first attempt poisons its scratch state then panics; the
        // retry must see freshly-initialized state.
        let opts = DurableOptions {
            retry: RetryPolicy {
                max_attempts: 2,
                backoff_ms: 0,
            },
            ..DurableOptions::default()
        };
        let out = run_durable_indexed(
            1,
            1,
            1,
            || true, // state: "clean"
            |clean, idx| {
                if *clean {
                    *clean = false;
                    panic!("first attempt fails");
                }
                // Retry: state was rebuilt, so `clean` is true again —
                // reaching here means the rebuild did NOT happen.
                Ok((idx, true))
            },
            recovered(Vec::new()),
            &opts,
        )
        .unwrap();
        assert_eq!(out.failed.len(), 1, "retry saw stale state");
        assert_eq!(out.failed[0].attempts, 2);
    }
}
