//! Thread-to-core assignments and core power states.

use crate::error::SimError;
use p7_power::CorePowerState;
use p7_types::{CoreId, SocketId, CORES_PER_SOCKET, NUM_SOCKETS};
use p7_workloads::{PlacementShape, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// One software thread pinned to one core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Thread {
    /// The workload this thread executes.
    pub workload: WorkloadProfile,
    /// The socket it is pinned to.
    pub socket: SocketId,
    /// The core it is pinned to.
    pub core: CoreId,
}

/// A complete placement: pinned threads plus per-socket powered-on core
/// counts (cores are powered on in index order 0 → 7, matching the paper's
/// activation order).
///
/// # Examples
///
/// ```
/// use p7_sim::Assignment;
/// use p7_workloads::Catalog;
///
/// let c = Catalog::power7plus();
/// let raytrace = c.get("raytrace").unwrap();
///
/// // The Sec. 3 configuration: k threads on socket 0, everything powered.
/// let a = Assignment::single_socket(raytrace, 4).unwrap();
/// assert_eq!(a.running_on(p7_types::SocketId::new(0).unwrap()), 4);
///
/// // The Sec. 5.1 loadline-borrowing schedule: 8-of-16 cores on, split.
/// let b = Assignment::borrowed(raytrace, 6).unwrap();
/// assert_eq!(b.on_cores(), [4, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    threads: Vec<Thread>,
    on_cores: [usize; NUM_SOCKETS],
}

impl Assignment {
    /// Builds an assignment from explicit threads and on-core counts.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidAssignment`] when two threads share a
    /// core, a thread sits on a powered-off core, or an on-core count
    /// exceeds eight.
    pub fn new(threads: Vec<Thread>, on_cores: [usize; NUM_SOCKETS]) -> Result<Self, SimError> {
        if on_cores.iter().any(|&n| n > CORES_PER_SOCKET) {
            return Err(SimError::InvalidAssignment {
                reason: format!("on-core counts {on_cores:?} exceed the 8 cores per socket"),
            });
        }
        let mut seen = [[false; CORES_PER_SOCKET]; NUM_SOCKETS];
        for t in &threads {
            let s = t.socket.index();
            let c = t.core.index();
            if seen[s][c] {
                return Err(SimError::InvalidAssignment {
                    reason: format!("two threads pinned to {} {}", t.socket, t.core),
                });
            }
            seen[s][c] = true;
            if c >= on_cores[s] {
                return Err(SimError::InvalidAssignment {
                    reason: format!(
                        "thread pinned to powered-off {} {} (only {} cores on)",
                        t.socket, t.core, on_cores[s]
                    ),
                });
            }
        }
        Ok(Assignment { threads, on_cores })
    }

    /// The Sec. 3 measurement configuration: `k` threads of `workload` on
    /// socket 0's cores 0..k; all cores of both sockets stay powered on
    /// (the second processor idles).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidAssignment`] when `k > 8`.
    pub fn single_socket(workload: &WorkloadProfile, k: usize) -> Result<Self, SimError> {
        let socket = SocketId::new(0).expect("socket 0 exists");
        let threads = Self::pin_in_order(workload, socket, k)?;
        Assignment::new(threads, [CORES_PER_SOCKET, CORES_PER_SOCKET])
    }

    /// The Sec. 5.1 baseline: workload consolidation. Eight of the sixteen
    /// cores stay powered (all on socket 0); socket 1 is fully power
    /// gated. `k` threads run on socket 0.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidAssignment`] when `k > 8`.
    pub fn consolidated(workload: &WorkloadProfile, k: usize) -> Result<Self, SimError> {
        let socket = SocketId::new(0).expect("socket 0 exists");
        let threads = Self::pin_in_order(workload, socket, k)?;
        Assignment::new(threads, [CORES_PER_SOCKET, 0])
    }

    /// The Sec. 5.1 loadline-borrowing schedule: four cores powered on per
    /// socket (eight of sixteen total), threads split as evenly as
    /// possible (socket 0 gets the remainder).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidAssignment`] when `k > 8`.
    pub fn borrowed(workload: &WorkloadProfile, k: usize) -> Result<Self, SimError> {
        let shape = PlacementShape::balanced(k);
        let [k0, k1] = shape.threads_per_socket();
        let s0 = SocketId::new(0).expect("socket 0 exists");
        let s1 = SocketId::new(1).expect("socket 1 exists");
        let mut threads = Self::pin_in_order(workload, s0, k0)?;
        threads.extend(Self::pin_in_order(workload, s1, k1)?);
        Assignment::new(threads, [CORES_PER_SOCKET / 2, CORES_PER_SOCKET / 2])
    }

    /// A heterogeneous mix on socket 0: one workload per core, pinned in
    /// order; all cores of both sockets stay powered (the imbalance
    /// studies of Sec. 4.2).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidAssignment`] when more than eight
    /// workloads are supplied.
    pub fn mixed_single_socket(workloads: &[WorkloadProfile]) -> Result<Self, SimError> {
        if workloads.len() > CORES_PER_SOCKET {
            return Err(SimError::InvalidAssignment {
                reason: format!("{} workloads exceed the 8 cores of P0", workloads.len()),
            });
        }
        let socket = SocketId::new(0).expect("socket 0 exists");
        let threads = workloads
            .iter()
            .enumerate()
            .map(|(i, w)| Thread {
                workload: w.clone(),
                socket,
                core: CoreId::new(i as u8).expect("core in range"),
            })
            .collect();
        Assignment::new(threads, [CORES_PER_SOCKET, CORES_PER_SOCKET])
    }

    /// A full-server balanced placement for up to 16 threads: threads
    /// split as evenly as possible across both sockets, powered-on cores
    /// tracking the thread count on each socket (the natural extension of
    /// loadline borrowing to loads beyond one chip).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidAssignment`] when `k > 16`.
    pub fn balanced_server(workload: &WorkloadProfile, k: usize) -> Result<Self, SimError> {
        if k > CORES_PER_SOCKET * NUM_SOCKETS {
            return Err(SimError::InvalidAssignment {
                reason: format!("{k} threads exceed the server's 16 cores"),
            });
        }
        let k1 = k / 2;
        let k0 = k - k1;
        let s0 = SocketId::new(0).expect("socket 0 exists");
        let s1 = SocketId::new(1).expect("socket 1 exists");
        let mut threads = Self::pin_in_order(workload, s0, k0)?;
        threads.extend(Self::pin_in_order(workload, s1, k1)?);
        Assignment::new(threads, [k0, k1])
    }

    /// A colocation mix on socket 0 (the Sec. 5.2 experiments): `primary`
    /// on core 0 and `co_runner` threads on cores 1..=n; all cores on.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidAssignment`] when the mix exceeds eight
    /// threads.
    pub fn colocated(
        primary: &WorkloadProfile,
        co_runner: &WorkloadProfile,
        co_runner_threads: usize,
    ) -> Result<Self, SimError> {
        let socket = SocketId::new(0).expect("socket 0 exists");
        if co_runner_threads + 1 > CORES_PER_SOCKET {
            return Err(SimError::InvalidAssignment {
                reason: format!("1 + {co_runner_threads} threads exceed 8 cores"),
            });
        }
        let mut threads = vec![Thread {
            workload: primary.clone(),
            socket,
            core: CoreId::new(0).expect("core 0 exists"),
        }];
        for i in 0..co_runner_threads {
            threads.push(Thread {
                workload: co_runner.clone(),
                socket,
                core: CoreId::new(i as u8 + 1).expect("core in range"),
            });
        }
        Assignment::new(threads, [CORES_PER_SOCKET, CORES_PER_SOCKET])
    }

    fn pin_in_order(
        workload: &WorkloadProfile,
        socket: SocketId,
        k: usize,
    ) -> Result<Vec<Thread>, SimError> {
        if k > CORES_PER_SOCKET {
            return Err(SimError::InvalidAssignment {
                reason: format!("{k} threads exceed the 8 cores of {socket}"),
            });
        }
        Ok((0..k)
            .map(|i| Thread {
                workload: workload.clone(),
                socket,
                core: CoreId::new(i as u8).expect("core in range"),
            })
            .collect())
    }

    /// The pinned threads.
    #[must_use]
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// Powered-on core counts per socket.
    #[must_use]
    pub fn on_cores(&self) -> [usize; NUM_SOCKETS] {
        self.on_cores
    }

    /// Number of running threads on `socket`.
    #[must_use]
    pub fn running_on(&self, socket: SocketId) -> usize {
        self.threads.iter().filter(|t| t.socket == socket).count()
    }

    /// Total running threads.
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.threads.len()
    }

    /// The thread pinned to `(socket, core)`, if any.
    #[must_use]
    pub fn thread_at(&self, socket: SocketId, core: CoreId) -> Option<&Thread> {
        self.threads
            .iter()
            .find(|t| t.socket == socket && t.core == core)
    }

    /// The power state of `(socket, core)` under this assignment.
    #[must_use]
    pub fn core_state(&self, socket: SocketId, core: CoreId) -> CorePowerState {
        if self.thread_at(socket, core).is_some() {
            CorePowerState::Running
        } else if core.index() < self.on_cores[socket.index()] {
            CorePowerState::IdleOn
        } else {
            CorePowerState::Gated
        }
    }

    /// The placement shape (thread counts per socket) for the execution
    /// model.
    #[must_use]
    pub fn placement_shape(&self) -> PlacementShape {
        let counts = [
            self.running_on(SocketId::new(0).expect("socket 0 exists")),
            self.running_on(SocketId::new(1).expect("socket 1 exists")),
        ];
        PlacementShape::explicit(counts).expect("thread counts are within socket capacity")
    }

    /// The dominant (most frequent) workload of this assignment, used for
    /// execution-time modelling of homogeneous runs.
    #[must_use]
    pub fn primary_workload(&self) -> Option<&WorkloadProfile> {
        self.threads.first().map(|t| &t.workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p7_workloads::Catalog;

    fn raytrace() -> WorkloadProfile {
        Catalog::power7plus().get("raytrace").unwrap().clone()
    }

    #[test]
    fn single_socket_powers_everything() {
        let a = Assignment::single_socket(&raytrace(), 3).unwrap();
        assert_eq!(a.on_cores(), [8, 8]);
        assert_eq!(a.total_threads(), 3);
        let s0 = SocketId::new(0).unwrap();
        assert_eq!(
            a.core_state(s0, CoreId::new(0).unwrap()),
            CorePowerState::Running
        );
        assert_eq!(
            a.core_state(s0, CoreId::new(5).unwrap()),
            CorePowerState::IdleOn
        );
        let s1 = SocketId::new(1).unwrap();
        assert_eq!(
            a.core_state(s1, CoreId::new(0).unwrap()),
            CorePowerState::IdleOn
        );
    }

    #[test]
    fn consolidated_gates_the_second_socket() {
        let a = Assignment::consolidated(&raytrace(), 5).unwrap();
        assert_eq!(a.on_cores(), [8, 0]);
        let s1 = SocketId::new(1).unwrap();
        for core in CoreId::all() {
            assert_eq!(a.core_state(s1, core), CorePowerState::Gated);
        }
    }

    #[test]
    fn borrowed_splits_threads_and_cores() {
        let a = Assignment::borrowed(&raytrace(), 5).unwrap();
        assert_eq!(a.on_cores(), [4, 4]);
        assert_eq!(a.running_on(SocketId::new(0).unwrap()), 3);
        assert_eq!(a.running_on(SocketId::new(1).unwrap()), 2);
        assert_eq!(a.placement_shape().threads_per_socket(), [3, 2]);
    }

    #[test]
    fn colocated_mixes_workloads() {
        let c = Catalog::power7plus();
        let cm = c.get("coremark").unwrap();
        let lu = c.get("lu_cb").unwrap();
        let a = Assignment::colocated(cm, lu, 7).unwrap();
        assert_eq!(a.total_threads(), 8);
        let s0 = SocketId::new(0).unwrap();
        assert_eq!(
            a.thread_at(s0, CoreId::new(0).unwrap())
                .unwrap()
                .workload
                .name(),
            "coremark"
        );
        assert_eq!(
            a.thread_at(s0, CoreId::new(3).unwrap())
                .unwrap()
                .workload
                .name(),
            "lu_cb"
        );
        assert!(Assignment::colocated(cm, lu, 8).is_err());
    }

    #[test]
    fn mixed_single_socket_pins_in_order() {
        let c = Catalog::power7plus();
        let mix = vec![
            c.get("lu_cb").unwrap().clone(),
            c.get("mcf").unwrap().clone(),
            c.get("mcf").unwrap().clone(),
        ];
        let a = Assignment::mixed_single_socket(&mix).unwrap();
        assert_eq!(a.total_threads(), 3);
        let s0 = SocketId::new(0).unwrap();
        assert_eq!(
            a.thread_at(s0, CoreId::new(0).unwrap())
                .unwrap()
                .workload
                .name(),
            "lu_cb"
        );
        assert_eq!(
            a.thread_at(s0, CoreId::new(2).unwrap())
                .unwrap()
                .workload
                .name(),
            "mcf"
        );
        assert_eq!(a.on_cores(), [8, 8]);
        let too_many = vec![c.get("mcf").unwrap().clone(); 9];
        assert!(Assignment::mixed_single_socket(&too_many).is_err());
    }

    #[test]
    fn balanced_server_splits_threads_and_power() {
        let a = Assignment::balanced_server(&raytrace(), 12).unwrap();
        assert_eq!(a.running_on(SocketId::new(0).unwrap()), 6);
        assert_eq!(a.running_on(SocketId::new(1).unwrap()), 6);
        assert_eq!(a.on_cores(), [6, 6]);
        assert!(Assignment::balanced_server(&raytrace(), 17).is_err());
    }

    #[test]
    fn rejects_double_pinning() {
        let t = |core: u8| Thread {
            workload: raytrace(),
            socket: SocketId::new(0).unwrap(),
            core: CoreId::new(core).unwrap(),
        };
        let err = Assignment::new(vec![t(2), t(2)], [8, 8]).unwrap_err();
        assert!(matches!(err, SimError::InvalidAssignment { .. }));
    }

    #[test]
    fn rejects_thread_on_gated_core() {
        let t = Thread {
            workload: raytrace(),
            socket: SocketId::new(0).unwrap(),
            core: CoreId::new(6).unwrap(),
        };
        assert!(Assignment::new(vec![t], [4, 4]).is_err());
    }

    #[test]
    fn rejects_too_many_threads() {
        assert!(Assignment::single_socket(&raytrace(), 9).is_err());
    }
}
