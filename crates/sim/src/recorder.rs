//! On-disk flight-recorder log: metric frames persisted on the journal
//! segment substrate, so history survives a daemon restart with the same
//! durability story as the task queue (checksummed segments, atomic
//! writes, torn tails skipped — never trusted).
//!
//! The in-memory side lives in `p7_obs::timeseries`; this module only
//! moves [`FrameRecord`]s between that ring and disk. Recovery is
//! deliberately forgiving: a recorder log is advisory telemetry, not
//! campaign state, so a corrupt manifest or unreadable directory wipes
//! the log and starts fresh ("cleanly truncated") rather than refusing
//! to serve.

use crate::error::SimError;
use crate::journal::{CampaignManifest, Journal, MANIFEST_FILE};
use crate::vfs::DynFs;
use serde::{de, Deserialize, Serialize, Value};
use std::path::Path;

/// Campaign kind stamped into a recorder log's manifest.
pub const RECORDER_JOURNAL_KIND: &str = "recorder";

/// One persisted metrics frame: the on-disk twin of
/// `p7_obs::timeseries::Frame`.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRecord {
    /// Wall-clock milliseconds since the Unix epoch.
    pub t_ms: u64,
    /// `(series key, value)` readings.
    pub series: Vec<(String, f64)>,
}

// Series ride as `[["key", value], …]` pairs: compact, order-preserving,
// and human-greppable in the segment JSON.
impl Serialize for FrameRecord {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("t_ms".to_owned(), self.t_ms.to_value()),
            (
                "series".to_owned(),
                Value::Seq(
                    self.series
                        .iter()
                        .map(|(k, v)| Value::Seq(vec![Value::Str(k.clone()), Value::Float(*v)]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for FrameRecord {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let mut series = Vec::new();
        for pair in v.field("series")?.as_seq()? {
            let pair = pair.as_seq()?;
            if pair.len() != 2 {
                return Err(de::Error::new(format!(
                    "series pair has {} elements; want 2",
                    pair.len()
                )));
            }
            let key = match &pair[0] {
                Value::Str(s) => s.clone(),
                other => {
                    return Err(de::Error::new(format!(
                        "series key must be a string, got {}",
                        other.kind()
                    )))
                }
            };
            series.push((key, pair[1].as_float()?));
        }
        Ok(FrameRecord {
            t_ms: u64::from_value(v.field("t_ms")?)?,
            series,
        })
    }
}

/// The manifest every recorder log is stamped with.
fn recorder_manifest() -> CampaignManifest {
    CampaignManifest::new(
        RECORDER_JOURNAL_KIND,
        0,
        "{\"log\":\"flight-recorder\"}".to_owned(),
    )
}

/// A durable, append-only log of [`FrameRecord`]s.
pub struct RecorderLog {
    journal: Journal<FrameRecord>,
    /// Next global frame sequence number (continues across restarts).
    seq: usize,
}

impl RecorderLog {
    /// Opens (or creates) the recorder log in `dir`, returning the log
    /// plus every frame recovered from intact segments, oldest first.
    ///
    /// Recovery policy: torn or checksum-failed segments are silently
    /// skipped (their frames are lost — telemetry, not state); a log
    /// that cannot be resumed at all (corrupt manifest, mismatched
    /// kind) is wiped and recreated empty.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Journal`] only when even a fresh log cannot
    /// be created (directory unwritable).
    pub fn open_with(dir: &Path, fs: DynFs) -> Result<(RecorderLog, Vec<FrameRecord>), SimError> {
        if fs.exists(&dir.join(MANIFEST_FILE)) {
            match Journal::resume_with(dir, &recorder_manifest(), DynFs::clone(&fs)) {
                Ok(resumed) => {
                    let mut entries = resumed.entries;
                    entries.sort_by_key(|(seq, _)| *seq);
                    let seq = entries.last().map_or(0, |(s, _)| s + 1);
                    let frames = entries.into_iter().map(|(_, f)| f).collect();
                    return Ok((
                        RecorderLog {
                            journal: resumed.journal,
                            seq,
                        },
                        frames,
                    ));
                }
                Err(_) => wipe_dir(dir, &fs),
            }
        }
        let journal = Journal::create_with(dir, &recorder_manifest(), fs)?;
        Ok((RecorderLog { journal, seq: 0 }, Vec::new()))
    }

    /// Durably appends `frames` as one segment. A no-op for an empty
    /// batch.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Journal`] on any I/O failure.
    pub fn append(&mut self, frames: &[FrameRecord]) -> Result<(), SimError> {
        let entries: Vec<(usize, FrameRecord)> = frames
            .iter()
            .enumerate()
            .map(|(i, f)| (self.seq + i, f.clone()))
            .collect();
        self.journal.append(&entries)?;
        self.seq += frames.len();
        Ok(())
    }

    /// The log directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        self.journal.dir()
    }
}

/// Best-effort removal of every file in `dir` so a fresh log can be
/// created. Telemetry-grade recovery: failures are ignored (create will
/// report the directory as unusable if it truly is).
fn wipe_dir(dir: &Path, fs: &DynFs) {
    if let Ok(names) = fs.read_dir(dir) {
        for name in names {
            let _ = fs.remove_file(&dir.join(name));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::std_fs;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ags-recorder-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn frame(t_ms: u64) -> FrameRecord {
        FrameRecord {
            t_ms,
            series: vec![
                ("ags_serve_queue_depth".to_owned(), t_ms as f64),
                ("ags_serve_batch_width_count".to_owned(), 2.5),
            ],
        }
    }

    #[test]
    fn round_trips_frames_across_reopen() {
        let dir = tmpdir("roundtrip");
        let (mut log, recovered) = RecorderLog::open_with(&dir, std_fs()).unwrap();
        assert!(recovered.is_empty());
        log.append(&[frame(1), frame(2)]).unwrap();
        log.append(&[frame(3)]).unwrap();
        drop(log);
        let (mut log, recovered) = RecorderLog::open_with(&dir, std_fs()).unwrap();
        assert_eq!(recovered, vec![frame(1), frame(2), frame(3)]);
        // Appends after a reopen extend, not overwrite.
        log.append(&[frame(4)]).unwrap();
        drop(log);
        let (_, recovered) = RecorderLog::open_with(&dir, std_fs()).unwrap();
        assert_eq!(recovered.len(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_segment_is_cleanly_truncated() {
        let dir = tmpdir("torn");
        let (mut log, _) = RecorderLog::open_with(&dir, std_fs()).unwrap();
        log.append(&[frame(1)]).unwrap();
        log.append(&[frame(2)]).unwrap();
        drop(log);
        // Corrupt the newest segment, as a SIGKILL mid-write would.
        let mut segs: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                p.file_name()?.to_str()?.starts_with("seg-").then_some(p)
            })
            .collect();
        segs.sort();
        let tail = segs.last().unwrap();
        let mut bytes = fs::read(tail).unwrap();
        bytes.truncate(bytes.len() / 2);
        fs::write(tail, bytes).unwrap();
        let (mut log, recovered) = RecorderLog::open_with(&dir, std_fs()).unwrap();
        assert_eq!(recovered, vec![frame(1)], "torn tail dropped, prefix kept");
        // The reopened log keeps appending past the dead segment.
        log.append(&[frame(5)]).unwrap();
        drop(log);
        let (_, recovered) = RecorderLog::open_with(&dir, std_fs()).unwrap();
        assert_eq!(recovered, vec![frame(1), frame(5)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_wipes_and_recreates() {
        let dir = tmpdir("manifest");
        let (mut log, _) = RecorderLog::open_with(&dir, std_fs()).unwrap();
        log.append(&[frame(1)]).unwrap();
        drop(log);
        fs::write(dir.join(MANIFEST_FILE), b"not json at all").unwrap();
        let (mut log, recovered) = RecorderLog::open_with(&dir, std_fs()).unwrap();
        assert!(recovered.is_empty(), "unrecoverable log restarts empty");
        log.append(&[frame(9)]).unwrap();
        drop(log);
        let (_, recovered) = RecorderLog::open_with(&dir, std_fs()).unwrap();
        assert_eq!(recovered, vec![frame(9)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn frame_record_serde_round_trip() {
        let f = frame(42);
        let v = f.to_value();
        let back = FrameRecord::from_value(&v).unwrap();
        assert_eq!(back, f);
        // Wire shape: series pairs are ["key", value] arrays.
        let json = serde::json::to_string(&f);
        assert!(json.contains("[\"ags_serve_queue_depth\",42.0]"), "{json}");
    }
}
