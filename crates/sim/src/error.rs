//! Error types of the simulator crate.

use p7_control::ControlError;
use p7_pdn::PdnError;
use p7_power::PowerError;
use p7_sensors::SensorError;
use p7_workloads::WorkloadError;
use std::error::Error;
use std::fmt;

/// Errors produced while building or running a simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// A power-delivery configuration problem.
    Pdn(PdnError),
    /// A power-model configuration problem.
    Power(PowerError),
    /// A sensor/telemetry problem.
    Sensor(SensorError),
    /// A control-stack configuration problem.
    Control(ControlError),
    /// A workload definition problem.
    Workload(WorkloadError),
    /// An inconsistent server configuration.
    InvalidConfig {
        /// What was inconsistent.
        reason: &'static str,
    },
    /// An assignment placed threads illegally.
    InvalidAssignment {
        /// What was wrong.
        reason: String,
    },
    /// An invalid fault plan or safety-supervisor configuration.
    Resilience {
        /// What was wrong.
        reason: String,
    },
    /// A malformed sweep or campaign spec (bad JSON or wrong shape).
    Spec {
        /// What was wrong with the text.
        reason: String,
    },
    /// A campaign-journal problem: an unreadable directory, a corrupt
    /// manifest or segment, or a manifest that does not match the spec
    /// being resumed.
    Journal {
        /// What was wrong.
        reason: String,
    },
    /// A campaign was cancelled cooperatively (SIGINT/SIGTERM) after
    /// flushing its journal; re-running with `--resume` continues it.
    Interrupted {
        /// The journal directory holding the completed points, if the
        /// run was journaled.
        journal: Option<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Pdn(e) => write!(f, "pdn: {e}"),
            SimError::Power(e) => write!(f, "power: {e}"),
            SimError::Sensor(e) => write!(f, "sensor: {e}"),
            SimError::Control(e) => write!(f, "control: {e}"),
            SimError::Workload(e) => write!(f, "workload: {e}"),
            SimError::InvalidConfig { reason } => write!(f, "invalid server config: {reason}"),
            SimError::InvalidAssignment { reason } => write!(f, "invalid assignment: {reason}"),
            SimError::Resilience { reason } => write!(f, "resilience: {reason}"),
            SimError::Spec { reason } => write!(f, "invalid spec: {reason}"),
            SimError::Journal { reason } => write!(f, "journal: {reason}"),
            SimError::Interrupted { journal: Some(dir) } => {
                write!(f, "interrupted; resume with --resume {dir}")
            }
            SimError::Interrupted { journal: None } => {
                write!(f, "interrupted (no journal to resume from)")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Pdn(e) => Some(e),
            SimError::Power(e) => Some(e),
            SimError::Sensor(e) => Some(e),
            SimError::Control(e) => Some(e),
            SimError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PdnError> for SimError {
    fn from(e: PdnError) -> Self {
        SimError::Pdn(e)
    }
}

impl From<PowerError> for SimError {
    fn from(e: PowerError) -> Self {
        SimError::Power(e)
    }
}

impl From<SensorError> for SimError {
    fn from(e: SensorError) -> Self {
        SimError::Sensor(e)
    }
}

impl From<ControlError> for SimError {
    fn from(e: ControlError) -> Self {
        SimError::Control(e)
    }
}

impl From<WorkloadError> for SimError {
    fn from(e: WorkloadError) -> Self {
        SimError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_substrate_errors_with_source() {
        let err: SimError = PdnError::CurrentOutOfRange { amps: -1.0 }.into();
        assert!(err.source().is_some());
        assert!(format!("{err}").starts_with("pdn:"));
    }

    #[test]
    fn config_errors_have_no_source() {
        let err = SimError::InvalidConfig { reason: "x" };
        assert!(err.source().is_none());
    }
}
