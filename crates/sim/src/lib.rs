//! Full-system simulator of a two-socket POWER7+ server with adaptive
//! guardbanding.
//!
//! This crate wires the substrates together into the feedback loop of the
//! paper's Fig. 2a:
//!
//! ```text
//!  workload activity ──► per-core power ──► currents ──► VRM loadline,
//!       ▲                                                IR drop, di/dt
//!       │                                                     │
//!  DPLL frequency ◄── CPM margin sensing ◄── on-chip voltage ◄┘
//!       │
//!       └──► firmware (32 ms): undervolt the rail until the DPLL
//!            frequency sits at the target
//! ```
//!
//! Each simulation tick is one 32 ms AMESTER/firmware window. Within a
//! tick the electrical state (voltage ↔ power ↔ current) is solved to a
//! fixed point, di/dt noise is sampled, CPMs are read, the DPLLs track
//! their margins, and in undervolting mode the firmware trims each
//! socket's rail. Execution time is derived from the settled frequency via
//! the workload's execution model, mirroring how the paper combines power
//! telemetry with wall-clock runs.
//!
//! Entry points:
//!
//! * [`Assignment`] — which threads run where, which cores are powered,
//! * [`Simulation`] — the tick engine over a [`config::ServerConfig`],
//! * [`Experiment`] — one-call wrapper producing an [`Outcome`] with
//!   power, frequency, undervolt, drop decomposition, execution time,
//!   energy and EDP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod chip;
pub mod config;
pub mod error;
pub mod experiment;
pub mod fsck;
pub mod group;
pub mod history;
pub mod journal;
pub mod measure;
pub mod recorder;
pub mod resilience;
pub mod server;
pub mod solve;
pub mod sweep;
pub mod telemetry;
pub mod vfs;

pub use assignment::{Assignment, Thread};
pub use config::ServerConfig;
pub use error::SimError;
pub use experiment::{Experiment, Outcome, DEFAULT_MEASURE_TICKS, DEFAULT_WARMUP_TICKS};
pub use fsck::{FsckReport, ManifestStatus, SegmentVerdict};
pub use group::{run_group, GroupTicker};
pub use history::{History, SimEvent, SimEventKind, TickRecord};
pub use journal::{
    CampaignManifest, CancelToken, DurableOptions, FailedPoint, Journal, JournalMode, RetryPolicy,
};
pub use measure::{RunSummary, SocketMetrics};
pub use resilience::{ResilienceReport, ResilienceSpec, ScenarioResult};
pub use server::Simulation;
pub use solve::{LaneSolution, LaneSpec, SolveBatch, MAX_SOLVE_ITERATIONS, SOLVE_TOLERANCE};
pub use sweep::{
    experiment_fingerprint, CacheStats, CachedExperiment, GridPoint, PanicInjector, Placement,
    PointResult, SolveCache, SweepEngine, SweepReport, SweepRunOptions, SweepSpec,
    DEFAULT_CACHE_CAPACITY, GROUP_SOLVE_LANES,
};
pub use vfs::{std_fs, DynFs, Fs, StdFs};
