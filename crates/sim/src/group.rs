//! Group ticking: advancing many independent servers' windows through one
//! wide [`SolveBatch`].
//!
//! A two-socket server only ever occupies two solver lanes, so a
//! `SolveBatch<2>` leaves the SoA kernel's width on the table. The
//! [`GroupTicker`] packs the sockets of up to `LANES / 2` *uncorrelated*
//! servers into one batch: every member runs its pre-solve half
//! (fault effects, rail snapshot, activity draw, DPLL settle), all lanes
//! converge in one fixed-point pass, then every member finishes its window
//! (noise, CPMs, control, thermal) from its own lanes.
//!
//! Lanes are arithmetically independent — the batched kernel reproduces
//! the scalar loop bit for bit per lane regardless of its neighbours (the
//! PR 6 differential harness's guarantee) — so a group tick is *bitwise
//! identical* to ticking each server alone. That equivalence is what lets
//! the fleet engine and the sweep workers regroup servers freely (and
//! steal them across workers) without perturbing a single result.

use crate::chip::{SocketTick, TickPrelude};
use crate::measure::{Accumulator, RunSummary};
use crate::server::{Simulation, TickSetup};
use crate::solve::{LaneSolution, SolveBatch};
use p7_obs::trace;
use p7_types::NUM_SOCKETS;

/// Reusable scratch for ticking a group of servers through one wide
/// [`SolveBatch`]. Holds the batch and per-member staging buffers so a
/// warm [`GroupTicker::tick_group`] performs no heap allocation.
#[derive(Default)]
pub struct GroupTicker<const LANES: usize> {
    batch: SolveBatch<LANES>,
    spans: Vec<trace::Span>,
    setups: Vec<TickSetup>,
    preludes: Vec<[TickPrelude; NUM_SOCKETS]>,
}

impl<const LANES: usize> GroupTicker<LANES> {
    /// A fresh ticker with staging capacity for a full group.
    #[must_use]
    pub fn new() -> Self {
        let cap = Self::capacity();
        GroupTicker {
            batch: SolveBatch::new(),
            spans: Vec::with_capacity(cap),
            setups: Vec::with_capacity(cap),
            preludes: Vec::with_capacity(cap),
        }
    }

    /// How many two-socket servers one batch can hold.
    #[must_use]
    pub const fn capacity() -> usize {
        LANES / NUM_SOCKETS
    }

    /// Advances every server in `sims` by one 32 ms window, solving all of
    /// their sockets as lanes of a single batch. `sink(i, &ticks)` is
    /// called once per server, in slice order, with its window's
    /// observations.
    ///
    /// Servers routed through the scalar oracle keep their scalar solve
    /// (their lanes are simply left unoccupied), so a mixed group is still
    /// bitwise-faithful to solo ticking. Groups smaller than
    /// [`GroupTicker::capacity`] leave the remaining lanes masked out —
    /// the kernel's occupancy masking makes a partial batch exact, not
    /// approximate.
    ///
    /// # Panics
    ///
    /// Panics when `sims` holds more servers than the batch has lanes for.
    pub fn tick_group(
        &mut self,
        sims: &mut [&mut Simulation],
        mut sink: impl FnMut(usize, &[SocketTick; NUM_SOCKETS]),
    ) {
        assert!(
            sims.len() * NUM_SOCKETS <= LANES,
            "group of {} servers needs {} lanes, batch has {LANES}",
            sims.len(),
            sims.len() * NUM_SOCKETS,
        );
        self.spans.clear();
        self.setups.clear();
        self.preludes.clear();

        // Phase 1 — every member's pre-solve half. The per-server "tick"
        // span opens here and closes when the whole group is settled, so
        // span counts and keys match solo ticking exactly.
        for sim in sims.iter_mut() {
            self.spans
                .push(trace::span("tick", sim.next_tick_index() as u64));
            let setup = sim.begin_tick();
            let preludes = sim.begin_windows(&setup);
            self.setups.push(setup);
            self.preludes.push(preludes);
        }

        // Phase 2 — one kernel pass over every non-oracle socket.
        self.batch.clear();
        for (g, sim) in sims.iter().enumerate() {
            if sim.wants_scalar_oracle() {
                continue;
            }
            for s in 0..NUM_SOCKETS {
                self.batch.load(
                    g * NUM_SOCKETS + s,
                    &sim.lane_spec(s, &self.setups[g], &self.preludes[g][s]),
                );
            }
        }
        if self.batch.occupancy() > 0 {
            self.batch.solve();
        }

        // Phase 3 — every member finishes and settles its own window.
        for (g, sim) in sims.iter_mut().enumerate() {
            let solutions: [LaneSolution; NUM_SOCKETS] = std::array::from_fn(|s| {
                lane_solution(
                    &self.batch,
                    sim,
                    g,
                    s,
                    &self.setups[g],
                    &self.preludes[g][s],
                )
            });
            let ticks = sim.finish_windows(&self.setups[g], &self.preludes[g], &solutions);
            let ticks = sim.settle_tick(&self.setups[g], ticks);
            sink(g, &ticks);
        }
        self.spans.clear();
    }
}

/// One socket's converged solution: its batch lane, or a scalar solve for
/// oracle servers.
fn lane_solution<const LANES: usize>(
    batch: &SolveBatch<LANES>,
    sim: &Simulation,
    group: usize,
    socket: usize,
    setup: &TickSetup,
    prelude: &TickPrelude,
) -> LaneSolution {
    #[cfg(feature = "scalar-oracle")]
    if sim.wants_scalar_oracle() {
        return sim.solve_scalar_socket(socket, setup, prelude);
    }
    let _ = (sim, setup, prelude);
    batch.lane(group * NUM_SOCKETS + socket)
}

/// Runs every server for `warmup + measure` windows in lane-batched
/// groups of [`GroupTicker::capacity`] (slice order defines the groups),
/// returning each server's averaged [`RunSummary`] in slice order.
///
/// Bitwise identical to calling [`Simulation::run`] on each server alone
/// — the group is a throughput optimization, not a semantic change.
///
/// # Panics
///
/// Panics if `measure` is zero.
#[must_use]
pub fn run_group<const LANES: usize>(
    sims: &mut [&mut Simulation],
    measure: usize,
    warmup: usize,
) -> Vec<RunSummary> {
    assert!(measure > 0, "must measure at least one window");
    let mut ticker = GroupTicker::<LANES>::new();
    let mut summaries = Vec::with_capacity(sims.len());
    let cap = GroupTicker::<LANES>::capacity().max(1);
    for chunk in sims.chunks_mut(cap) {
        for sim in chunk.iter_mut() {
            sim.reserve_telemetry(measure + warmup);
        }
        for _ in 0..warmup {
            ticker.tick_group(chunk, |_, _| {});
        }
        let mut accs: Vec<Accumulator> = chunk
            .iter()
            .map(|sim| Accumulator::new(sim.config().nominal_voltage(), sim.running_mask()))
            .collect();
        for _ in 0..measure {
            ticker.tick_group(chunk, |g, ticks| accs[g].add(ticks));
        }
        summaries.extend(
            accs.into_iter()
                .map(|acc| acc.finish().expect("measure > 0 windows were accumulated")),
        );
    }
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use crate::config::ServerConfig;
    use p7_control::GuardbandMode;
    use p7_workloads::Catalog;

    fn sim(name: &str, cores: usize, seed: u64, mode: GuardbandMode) -> Simulation {
        let w = Catalog::power7plus().get(name).unwrap().clone();
        let a = Assignment::single_socket(&w, cores).unwrap();
        Simulation::new(ServerConfig::power7plus(seed), a, mode).unwrap()
    }

    fn mixed_fleet() -> Vec<Simulation> {
        [
            ("raytrace", 4, 42, GuardbandMode::Undervolt),
            ("lu_cb", 1, 7, GuardbandMode::Overclock),
            ("radix", 8, 13, GuardbandMode::StaticGuardband),
            ("vips", 2, 99, GuardbandMode::Undervolt),
            ("swaptions", 6, 3, GuardbandMode::Undervolt),
            ("mcf", 3, 1, GuardbandMode::Overclock),
        ]
        .into_iter()
        .map(|(n, c, s, m)| sim(n, c, s, m))
        .collect()
    }

    fn solo_summaries(measure: usize, warmup: usize) -> Vec<RunSummary> {
        mixed_fleet()
            .iter_mut()
            .map(|s| s.run(measure, warmup))
            .collect()
    }

    #[test]
    fn group_run_is_bitwise_identical_to_solo_runs() {
        for lanes_label in ["8", "16"] {
            let mut fleet = mixed_fleet();
            let mut refs: Vec<&mut Simulation> = fleet.iter_mut().collect();
            let grouped = match lanes_label {
                "8" => run_group::<8>(&mut refs, 12, 6),
                _ => run_group::<16>(&mut refs, 12, 6),
            };
            assert_eq!(grouped, solo_summaries(12, 6), "LANES {lanes_label}");
        }
    }

    #[test]
    fn partial_groups_mask_the_remainder_lanes() {
        // 6 servers in 16-lane batches: one full group of 8 would fit,
        // so all 6 share one batch with 4 lanes masked out — the
        // non-multiple occupancy must still be exact.
        let mut fleet = mixed_fleet();
        let mut refs: Vec<&mut Simulation> = fleet.iter_mut().collect();
        let grouped = run_group::<16>(&mut refs, 9, 4);
        assert_eq!(grouped, solo_summaries(9, 4));

        // And a single odd server in a wide batch (occupancy 2 of 16).
        let mut one = sim("raytrace", 5, 4242, GuardbandMode::Undervolt);
        let mut solo = sim("raytrace", 5, 4242, GuardbandMode::Undervolt);
        let mut refs = vec![&mut one];
        let grouped = run_group::<16>(&mut refs, 7, 3);
        assert_eq!(grouped[0], solo.run(7, 3));
    }

    #[test]
    fn faulted_servers_group_tick_like_solo() {
        use p7_faults::FaultPlan;
        let plan = FaultPlan::named("droop-storm").unwrap();
        let build = || {
            let mut fleet = mixed_fleet();
            fleet[1].set_fault_plan(plan.clone()).unwrap();
            fleet[4].set_fault_plan(plan.clone()).unwrap();
            fleet
        };
        let mut grouped_fleet = build();
        let mut refs: Vec<&mut Simulation> = grouped_fleet.iter_mut().collect();
        let grouped = run_group::<8>(&mut refs, 40, 5);
        let solo: Vec<RunSummary> = build().iter_mut().map(|s| s.run(40, 5)).collect();
        assert_eq!(grouped, solo);
    }

    #[cfg(feature = "scalar-oracle")]
    #[test]
    fn oracle_servers_keep_the_scalar_path_inside_a_group() {
        let mut fleet = mixed_fleet();
        fleet[0].set_scalar_oracle(true);
        fleet[3].set_scalar_oracle(true);
        let mut refs: Vec<&mut Simulation> = fleet.iter_mut().collect();
        let grouped = run_group::<16>(&mut refs, 10, 5);
        assert_eq!(grouped, solo_summaries(10, 5));
    }

    #[test]
    fn group_ticker_is_reusable_across_groups() {
        let mut ticker = GroupTicker::<8>::new();
        let mut a = sim("raytrace", 2, 5, GuardbandMode::Undervolt);
        let mut b = sim("radix", 7, 6, GuardbandMode::Undervolt);
        let mut first = vec![&mut a];
        ticker.tick_group(&mut first, |_, _| {});
        let mut second = vec![&mut b];
        let mut seen = 0;
        ticker.tick_group(&mut second, |g, _| {
            assert_eq!(g, 0);
            seen += 1;
        });
        assert_eq!(seen, 1);

        let mut b_solo = sim("radix", 7, 6, GuardbandMode::Undervolt);
        b_solo.tick();
        // b advanced exactly one window, unperturbed by a's earlier group.
        assert_eq!(b.next_tick_index(), 1);
        assert_eq!(b_solo.next_tick_index(), 1);
    }
}
