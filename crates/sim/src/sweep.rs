//! Parallel sweep engine with memoized steady-state solves.
//!
//! The paper's evaluation is a large grid — 44 workloads × 1–8 active
//! cores × {static, undervolt, overclock} × placements — and every figure
//! binary used to walk its slice of that grid serially and from scratch.
//! This module factors the walk into one engine:
//!
//! * [`SweepSpec`] — a serde-serializable description of the grid
//!   (workload names × core counts × guardband modes × placements plus
//!   the master seed and tick counts),
//! * [`SweepEngine`] — expands the spec into [`GridPoint`]s, fans them
//!   out across `std::thread::scope` workers and merges the results by
//!   grid index, so the output order never depends on scheduling,
//! * [`SolveCache`] — a memoization table keyed by the electrically
//!   relevant state (configuration fingerprint, assignment fingerprint,
//!   mode, tick counts) so repeated steady-state solves are computed
//!   once, with hit/miss counters reported at sweep end.
//!
//! Determinism: each grid point derives its own seed from the spec's
//! master seed and the point's coordinates (workload, core count,
//! placement — deliberately *not* the mode, so all modes of one
//! assignment share their cached static solve). A point's result is a
//! pure function of the spec, so a sweep is bitwise identical at any
//! worker count.

use crate::assignment::Assignment;
use crate::error::SimError;
use crate::experiment::{Experiment, Outcome};
use crate::group::run_group;
use crate::journal::{
    fnv64, run_durable_indexed, CampaignManifest, DurableOptions, FailedPoint, JournalMode,
    OpenedJournal,
};
use crate::server::Simulation;
use crate::telemetry;
use p7_control::GuardbandMode;
use p7_faults::FaultPlan;
use p7_obs::trace;
use p7_workloads::{Catalog, ExecutionModel, WorkloadProfile};
use serde::{de, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// How threads are placed on the two sockets for one grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Sec. 3: k threads on socket 0, all 16 cores powered on.
    SingleSocket,
    /// Sec. 5.1 baseline: socket 0 powered, socket 1 fully gated.
    Consolidated,
    /// Sec. 5.1 loadline borrowing: 4 cores on per socket, threads split.
    Borrowed,
}

impl Placement {
    /// Every placement, in grid order.
    #[must_use]
    pub fn all() -> [Placement; 3] {
        [
            Placement::SingleSocket,
            Placement::Consolidated,
            Placement::Borrowed,
        ]
    }

    /// Builds the concrete assignment for `cores` threads of `workload`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidAssignment`] when `cores` exceeds the
    /// placement's capacity.
    pub fn assignment(
        self,
        workload: &WorkloadProfile,
        cores: usize,
    ) -> Result<Assignment, SimError> {
        match self {
            Placement::SingleSocket => Assignment::single_socket(workload, cores),
            Placement::Consolidated => Assignment::consolidated(workload, cores),
            Placement::Borrowed => Assignment::borrowed(workload, cores),
        }
    }

    /// Short lowercase name (CLI `--placement` values).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Placement::SingleSocket => "single",
            Placement::Consolidated => "consolidated",
            Placement::Borrowed => "borrowed",
        }
    }

    /// Parses a CLI placement name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Placement> {
        Placement::all().into_iter().find(|p| p.label() == name)
    }

    fn tag(self) -> u64 {
        match self {
            Placement::SingleSocket => 1,
            Placement::Consolidated => 2,
            Placement::Borrowed => 3,
        }
    }
}

/// A serializable description of one sweep grid.
///
/// The grid is the cartesian product `workloads × cores × placements ×
/// modes`, expanded in exactly that nesting order (workload-major).
///
/// # Examples
///
/// ```
/// use p7_sim::sweep::{SweepEngine, SweepSpec};
/// use p7_control::GuardbandMode;
///
/// let spec = SweepSpec::new(vec!["raytrace".into()], vec![1, 8])
///     .with_modes(vec![GuardbandMode::StaticGuardband, GuardbandMode::Undervolt])
///     .with_ticks(5, 2);
/// let report = SweepEngine::new(2).run(&spec)?;
/// assert_eq!(report.results.len(), 4);
/// # Ok::<(), p7_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepSpec {
    /// Catalog names of the workloads to sweep.
    pub workloads: Vec<String>,
    /// Active-core (thread) counts.
    pub cores: Vec<usize>,
    /// Guardband modes to run at each assignment.
    pub modes: Vec<GuardbandMode>,
    /// Thread placements to evaluate.
    pub placements: Vec<Placement>,
    /// Master seed; every grid point derives its own seed from it.
    pub seed: u64,
    /// Measured telemetry windows per run.
    pub measure_ticks: usize,
    /// Warm-up windows discarded before measuring.
    pub warmup_ticks: usize,
    /// Fault plan every grid point runs under (`None` = healthy sweep).
    pub faults: Option<FaultPlan>,
}

// Hand-written so spec files from before the `faults` dimension still
// parse: a missing "faults" key reads as a healthy sweep. The derived
// impl would reject the old files outright.
impl Deserialize for SweepSpec {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        fn req<T: Deserialize>(v: &Value, name: &str) -> Result<T, de::Error> {
            T::from_value(v.field(name)?).map_err(|e| e.in_context(name))
        }
        let faults = match v.field("faults") {
            Ok(value) => {
                Option::<FaultPlan>::from_value(value).map_err(|e| e.in_context("faults"))?
            }
            Err(_) => None,
        };
        Ok(SweepSpec {
            workloads: req(v, "workloads")?,
            cores: req(v, "cores")?,
            modes: req(v, "modes")?,
            placements: req(v, "placements")?,
            seed: req(v, "seed")?,
            measure_ticks: req(v, "measure_ticks")?,
            warmup_ticks: req(v, "warmup_ticks")?,
            faults,
        })
    }
}

/// The default sweep seed (the figure binaries' master seed).
pub const DEFAULT_SWEEP_SEED: u64 = 42;

impl SweepSpec {
    /// A spec over `workloads × cores` with the defaults the figure
    /// binaries use: all three modes, single-socket placement, seed 42,
    /// fast sweep ticks (30 measured / 15 warm-up).
    #[must_use]
    pub fn new(workloads: Vec<String>, cores: Vec<usize>) -> Self {
        SweepSpec {
            workloads,
            cores,
            modes: GuardbandMode::all().to_vec(),
            placements: vec![Placement::SingleSocket],
            seed: DEFAULT_SWEEP_SEED,
            measure_ticks: 30,
            warmup_ticks: 15,
            faults: None,
        }
    }

    /// Replaces the mode list.
    #[must_use]
    pub fn with_modes(mut self, modes: Vec<GuardbandMode>) -> Self {
        self.modes = modes;
        self
    }

    /// Replaces the placement list.
    #[must_use]
    pub fn with_placements(mut self, placements: Vec<Placement>) -> Self {
        self.placements = placements;
        self
    }

    /// Replaces the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the measured/warm-up tick counts.
    #[must_use]
    pub fn with_ticks(mut self, measure: usize, warmup: usize) -> Self {
        self.measure_ticks = measure.max(1);
        self.warmup_ticks = warmup;
        self
    }

    /// Runs every grid point under `plan` — the fault-campaign sweep
    /// dimension. The plan's fingerprint joins the solve-cache key, so
    /// faulted solves never collide with healthy ones.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The paper's Fig. 10 grid: every non-micro catalog workload at
    /// eight active cores, all three modes, single-socket placement.
    #[must_use]
    pub fn fig10_grid() -> Self {
        let names = Catalog::power7plus()
            .scatter_set()
            .iter()
            .map(|w| w.name().to_owned())
            .collect();
        SweepSpec::new(names, vec![8])
    }

    /// The shortened CI grid behind `ags sweep --smoke`: two contrasting
    /// workloads at two core counts with trimmed windows — enough to
    /// exercise the parallel engine, the solve cache, and both telemetry
    /// exporters in a couple of seconds.
    #[must_use]
    pub fn smoke_grid() -> Self {
        SweepSpec::new(vec!["lu_cb".to_owned(), "radix".to_owned()], vec![2, 4]).with_ticks(10, 5)
    }

    /// Number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.workloads.len() * self.cores.len() * self.placements.len() * self.modes.len()
    }

    /// True when any dimension is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the spec into grid points, workload-major.
    #[must_use]
    pub fn grid_points(&self) -> Vec<GridPoint> {
        let mut points = Vec::with_capacity(self.len());
        for workload in &self.workloads {
            for &cores in &self.cores {
                for &placement in &self.placements {
                    for &mode in &self.modes {
                        points.push(GridPoint {
                            index: points.len(),
                            workload: workload.clone(),
                            cores,
                            placement,
                            mode,
                        });
                    }
                }
            }
        }
        points
    }

    /// The seed a grid point runs under: a pure function of the master
    /// seed and the point's *assignment* coordinates. The mode is
    /// deliberately excluded so every mode of one assignment shares its
    /// cached static-baseline solve.
    #[must_use]
    pub fn point_seed(&self, point: &GridPoint) -> u64 {
        let mut h = splitmix(self.seed ^ fnv64(point.workload.as_bytes()));
        h = splitmix(h ^ point.cores as u64);
        splitmix(h ^ point.placement.tag())
    }

    /// Serializes the spec to its canonical JSON form (the on-disk format
    /// `ags sweep --spec <file>` reads).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Parses a spec from the JSON form produced by [`SweepSpec::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when the text is not valid JSON or
    /// does not describe a sweep spec — the same error type the CLI and
    /// journal-manifest validation report, so every spec-shaped failure
    /// carries one kind of context.
    pub fn from_json(text: &str) -> Result<Self, SimError> {
        serde::json::from_str(text).map_err(|e| SimError::Spec {
            reason: format!("sweep spec: {e}"),
        })
    }

    /// The campaign identity a journal of this spec is stamped with.
    #[must_use]
    pub fn manifest(&self) -> CampaignManifest {
        CampaignManifest::new("sweep", self.seed, self.to_json())
    }

    /// Checks that every dimension is non-empty, every workload exists
    /// in the catalog and every core count fits a socket.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] describing the first violation.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), SimError> {
        if self.is_empty() {
            return Err(SimError::InvalidConfig {
                reason: "sweep spec has an empty dimension",
            });
        }
        for name in &self.workloads {
            catalog.require(name)?;
        }
        for &cores in &self.cores {
            if !(1..=8).contains(&cores) {
                return Err(SimError::InvalidAssignment {
                    reason: format!("sweep core count {cores} outside 1..=8"),
                });
            }
        }
        if let Some(plan) = &self.faults {
            plan.validate()
                .map_err(|reason| SimError::Resilience { reason })?;
        }
        Ok(())
    }
}

/// One cell of the expanded grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPoint {
    /// Position in the deterministic expansion order.
    pub index: usize,
    /// Catalog name of the workload.
    pub workload: String,
    /// Active-core (thread) count.
    pub cores: usize,
    /// Thread placement.
    pub placement: Placement,
    /// Guardband mode.
    pub mode: GuardbandMode,
}

/// One solved grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointResult {
    /// The grid cell this result belongs to.
    pub point: GridPoint,
    /// The steady-state outcome of the run.
    pub outcome: Outcome,
}

/// Hit/miss counters of a [`SolveCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Solves answered from the cache.
    pub hits: u64,
    /// Solves that had to run the simulator.
    pub misses: u64,
    /// Distinct entries currently stored, summed across shards.
    pub entries: usize,
    /// Entries dropped by capacity eviction over the cache's lifetime.
    pub evictions: u64,
    /// Lock acquisitions that found their shard already held by another
    /// thread (each waited instead of failing). A fleet-scale probe storm
    /// shows up here long before it shows up in wall-clock time.
    pub contended: u64,
}

// Hand-written so reports serialized before the cache was sharded still
// parse: a missing "contended" key reads as an uncontended cache. The
// derived impl would reject the old files outright.
impl Deserialize for CacheStats {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        fn req<T: Deserialize>(v: &Value, name: &str) -> Result<T, de::Error> {
            T::from_value(v.field(name)?).map_err(|e| e.in_context(name))
        }
        let contended = match v.field("contended") {
            Ok(value) => u64::from_value(value).map_err(|e| e.in_context("contended"))?,
            Err(_) => 0,
        };
        Ok(CacheStats {
            hits: req(v, "hits")?,
            misses: req(v, "misses")?,
            entries: req(v, "entries")?,
            evictions: req(v, "evictions")?,
            contended,
        })
    }
}

impl CacheStats {
    /// Fraction of solves answered from the cache (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SolveKey {
    config_fingerprint: u64,
    assignment_fingerprint: u64,
    mode: GuardbandMode,
    measure_ticks: usize,
    warmup_ticks: usize,
    /// [`Experiment::fault_fingerprint`]: 0 for healthy solves, the
    /// installed plan's fingerprint otherwise. Keeps faulted trajectories
    /// out of healthy lookups and vice versa.
    fault_fingerprint: u64,
}

/// Default capacity of a [`SolveCache`] (entries). An entry holds one
/// `Outcome` (~1 KiB), so the default bounds the cache to tens of MiB —
/// week-long campaigns stop growing the process without bound.
pub const DEFAULT_CACHE_CAPACITY: usize = 16_384;

/// Number of independently locked shards in a [`SolveCache`]. Keys are
/// spread by a splitmix of their fingerprints, so concurrent probes from
/// a fleet's worth of workers land on different locks with high
/// probability instead of serializing on one.
const CACHE_SHARDS: usize = 16;

/// Memoization table for steady-state solves, shared across threads.
///
/// The key fingerprints everything a solve depends on: the full server
/// configuration (rails, curves, policy, seed), the assignment (workload
/// profiles, active-core set), the guardband mode and the tick counts.
/// Two racing workers may both miss on the same key; the solve is
/// deterministic, so whichever insert lands last stores the same bytes.
///
/// The table is split into [`CACHE_SHARDS`] independently locked shards
/// (keyed by a mix of the fingerprints) so fleet-scale concurrent probes
/// don't contend on a single lock; the `contended` counter in
/// [`CacheStats`] reports how often a thread still had to wait.
///
/// Capacity is bounded (see [`DEFAULT_CACHE_CAPACITY`], split evenly
/// across shards): when an insert would exceed a shard's share, roughly
/// half that shard's entries are evicted in one coarse pass. Eviction
/// only ever costs re-solves — results are unaffected.
#[derive(Debug)]
pub struct SolveCache {
    shards: [Mutex<HashMap<SolveKey, Arc<Outcome>>>; CACHE_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    contended: AtomicU64,
    capacity: usize,
}

impl Default for SolveCache {
    fn default() -> Self {
        SolveCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl SolveCache {
    /// An empty cache with the default capacity bound.
    #[must_use]
    pub fn new() -> Self {
        SolveCache::default()
    }

    /// An empty cache holding at most `capacity` entries (minimum 1 per
    /// shard).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SolveCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// The maximum number of entries kept before coarse eviction.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// One shard's share of the capacity bound.
    fn shard_capacity(&self) -> usize {
        (self.capacity / CACHE_SHARDS).max(1)
    }

    /// The shard a key lives in: a splitmix chain over every fingerprint
    /// component, so near-identical keys (same block, different mode)
    /// still spread across locks.
    fn shard_index(key: &SolveKey) -> usize {
        let mode_tag = match key.mode {
            GuardbandMode::StaticGuardband => 1u64,
            GuardbandMode::Overclock => 2,
            GuardbandMode::Undervolt => 3,
        };
        let mut h = splitmix(key.config_fingerprint);
        h = splitmix(h ^ key.assignment_fingerprint);
        h = splitmix(h ^ key.fault_fingerprint);
        h = splitmix(h ^ (key.measure_ticks as u64) ^ ((key.warmup_ticks as u64) << 24) ^ mode_tag);
        #[allow(clippy::cast_possible_truncation)]
        {
            (h % CACHE_SHARDS as u64) as usize
        }
    }

    /// Locks one shard, counting the acquisition as contended when the
    /// lock was already held by another thread.
    fn lock_shard(&self, idx: usize) -> std::sync::MutexGuard<'_, HashMap<SolveKey, Arc<Outcome>>> {
        match self.shards[idx].try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.shards[idx].lock().expect("cache shard lock")
            }
            Err(std::sync::TryLockError::Poisoned(poison)) => {
                panic!("cache shard lock poisoned: {poison}")
            }
        }
    }

    /// The process-wide shared cache. Figure binaries, the CLI and the
    /// integration tests all default to this instance, so identical
    /// solves are shared across every consumer in the process.
    #[must_use]
    pub fn global() -> Arc<SolveCache> {
        static GLOBAL: OnceLock<Arc<SolveCache>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(SolveCache::new())).clone()
    }

    /// Runs `experiment.run(assignment, mode)`, answering from the cache
    /// when an identical solve was already computed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the underlying run fails.
    pub fn solve(
        &self,
        experiment: &Experiment,
        assignment: &Assignment,
        mode: GuardbandMode,
    ) -> Result<Arc<Outcome>, SimError> {
        self.solve_fingerprinted(
            experiment_fingerprint(experiment),
            experiment,
            assignment,
            mode,
        )
    }

    /// [`SolveCache::solve`] with the experiment's fingerprint already
    /// computed — callers that reuse one experiment (or one execution
    /// model) across many solves hoist the serialization out of the
    /// loop. `experiment_fp` MUST be [`experiment_fingerprint`] of
    /// `experiment`, or equivalent solves will not share entries.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the underlying run fails.
    pub fn solve_fingerprinted(
        &self,
        experiment_fp: u64,
        experiment: &Experiment,
        assignment: &Assignment,
        mode: GuardbandMode,
    ) -> Result<Arc<Outcome>, SimError> {
        self.solve_with(
            experiment_fp,
            fingerprint(assignment),
            mode,
            experiment.measure_ticks(),
            experiment.warmup_ticks(),
            experiment.fault_fingerprint(),
            || experiment.run(assignment, mode),
        )
    }

    /// The core memoized solve: the caller supplies the fingerprints and
    /// a closure that computes the outcome on a miss. This is the warm
    /// fast path — a hit is one hash lookup, no serialization at all.
    /// `assignment_fp` MUST be the [`fingerprint`]-style hash of the
    /// assignment the closure runs, and `fault_fp` MUST be the
    /// [`Experiment::fault_fingerprint`] of the experiment (0 when
    /// healthy), or equivalent solves will not share entries — and
    /// faulted solves would poison healthy ones.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the miss closure fails.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_with<F>(
        &self,
        experiment_fp: u64,
        assignment_fp: u64,
        mode: GuardbandMode,
        measure_ticks: usize,
        warmup_ticks: usize,
        fault_fp: u64,
        solve: F,
    ) -> Result<Arc<Outcome>, SimError>
    where
        F: FnOnce() -> Result<Outcome, SimError>,
    {
        self.solve_with_status(
            experiment_fp,
            assignment_fp,
            mode,
            measure_ticks,
            warmup_ticks,
            fault_fp,
            solve,
        )
        .map(|(outcome, _)| outcome)
    }

    /// [`SolveCache::solve_with`], also reporting whether the outcome
    /// was computed by the closure (`true`, a miss) or served from the
    /// cache (`false`, a hit). Durable sweeps journal only computed
    /// points: a hit costs nothing to reproduce after a crash, so
    /// checkpointing it would buy no durability.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the miss closure fails.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_with_status<F>(
        &self,
        experiment_fp: u64,
        assignment_fp: u64,
        mode: GuardbandMode,
        measure_ticks: usize,
        warmup_ticks: usize,
        fault_fp: u64,
        solve: F,
    ) -> Result<(Arc<Outcome>, bool), SimError>
    where
        F: FnOnce() -> Result<Outcome, SimError>,
    {
        let key = SolveKey {
            config_fingerprint: experiment_fp,
            assignment_fingerprint: assignment_fp,
            mode,
            measure_ticks,
            warmup_ticks,
            fault_fingerprint: fault_fp,
        };
        let shard = Self::shard_index(&key);
        if let Some(hit) = self.lock_shard(shard).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            telemetry::solve_cache_hits().inc();
            return Ok((hit.clone(), false));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        telemetry::solve_cache_misses().inc();
        let outcome = Arc::new(solve()?);
        let mut map = self.lock_shard(shard);
        if map.len() >= self.shard_capacity() && !map.contains_key(&key) {
            // Coarse eviction: drop about half the shard in one pass.
            // Arbitrary victims are fine — the cache only buys speed,
            // never correctness — and halving amortizes the sweep cost.
            let drop_n = (map.len() / 2).max(1);
            let victims: Vec<SolveKey> = map.keys().take(drop_n).cloned().collect();
            for victim in &victims {
                map.remove(victim);
            }
            self.evictions
                .fetch_add(victims.len() as u64, Ordering::Relaxed);
            telemetry::solve_cache_evictions().add(victims.len() as u64);
            telemetry::solve_cache_entries().add(-(victims.len() as i64));
        }
        if map.insert(key, outcome.clone()).is_none() {
            telemetry::solve_cache_entries().add(1);
        }
        drop(map);
        Ok((outcome, true))
    }

    /// Probes a whole lane block — every guardband mode of one
    /// `(experiment, assignment)` — with **one** lock acquisition per
    /// distinct shard touched (modes of one block deliberately spread
    /// across shards, so this is one short lock per lane), filling `out`
    /// with `Some(outcome)` per present lane and `None` per absent one.
    ///
    /// Counting stays per lane, never per batch: each present lane bumps
    /// the hit counter exactly once here, and each absent lane is expected
    /// to go through [`SolveCache::solve_with_status`] individually, which
    /// records its miss. A point therefore counts exactly once whichever
    /// path answers it.
    ///
    /// The fingerprint arguments carry the same contracts as
    /// [`SolveCache::solve_with`].
    #[allow(clippy::too_many_arguments)]
    pub fn probe_lanes(
        &self,
        experiment_fp: u64,
        assignment_fp: u64,
        modes: &[GuardbandMode],
        measure_ticks: usize,
        warmup_ticks: usize,
        fault_fp: u64,
        out: &mut Vec<Option<Arc<Outcome>>>,
    ) {
        out.clear();
        out.reserve(modes.len());
        for &mode in modes {
            let key = SolveKey {
                config_fingerprint: experiment_fp,
                assignment_fingerprint: assignment_fp,
                mode,
                measure_ticks,
                warmup_ticks,
                fault_fingerprint: fault_fp,
            };
            let hit = self.lock_shard(Self::shard_index(&key)).get(&key).cloned();
            match hit {
                Some(hit) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    telemetry::solve_cache_hits().inc();
                    out.push(Some(hit));
                }
                None => out.push(None),
            }
        }
    }

    /// Current counters of this cache instance (what a sweep report
    /// embeds as `stats.cache`). Aggregates across every cache in the
    /// process are published through the [`crate::telemetry`] registry
    /// families `ags_solve_cache_{hits,misses,evictions}_total` and
    /// `ags_solve_cache_entries` (exported by `ags … --metrics`).
    #[must_use]
    pub fn counters(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|shard| shard.lock().expect("cache shard lock").len())
                .sum(),
            evictions: self.evictions.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
        }
    }

    /// Current counters.
    #[deprecated(
        since = "0.1.0",
        note = "use SolveCache::counters() for per-instance numbers, or read the \
                ags_solve_cache_* families from the p7-obs registry \
                (p7_obs::metrics::global().snapshot() or `ags … --metrics`)"
    )]
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.counters()
    }
}

/// An [`Experiment`] that routes every run through a [`SolveCache`].
///
/// Drop-in replacement for the copy-pasted `exp.run(...)` loops of the
/// figure binaries: same `run` / `improvement_vs_static` surface, but
/// repeated solves cost one lookup.
#[derive(Debug, Clone)]
pub struct CachedExperiment {
    experiment: Experiment,
    experiment_fp: u64,
    cache: Arc<SolveCache>,
}

impl CachedExperiment {
    /// Wraps an experiment with the process-wide global cache.
    #[must_use]
    pub fn new(experiment: Experiment) -> Self {
        CachedExperiment::with_cache(experiment, SolveCache::global())
    }

    /// Wraps an experiment with an explicit cache.
    #[must_use]
    pub fn with_cache(experiment: Experiment, cache: Arc<SolveCache>) -> Self {
        let experiment_fp = experiment_fingerprint(&experiment);
        CachedExperiment {
            experiment,
            experiment_fp,
            cache,
        }
    }

    /// The wrapped experiment.
    #[must_use]
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }

    /// The cache in use.
    #[must_use]
    pub fn cache(&self) -> &Arc<SolveCache> {
        &self.cache
    }

    /// Memoized [`Experiment::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the underlying run fails.
    pub fn run(
        &self,
        assignment: &Assignment,
        mode: GuardbandMode,
    ) -> Result<Arc<Outcome>, SimError> {
        self.cache
            .solve_fingerprinted(self.experiment_fp, &self.experiment, assignment, mode)
    }

    /// Memoized [`Experiment::improvement_vs_static`]: returns
    /// `(power_saving_percent, speedup_percent)` of `mode` over the
    /// static baseline on the same assignment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when either run fails.
    pub fn improvement_vs_static(
        &self,
        assignment: &Assignment,
        mode: GuardbandMode,
    ) -> Result<(f64, f64), SimError> {
        let baseline = self.run(assignment, GuardbandMode::StaticGuardband)?;
        let adaptive = self.run(assignment, mode)?;
        let power_saving =
            (baseline.chip_power().0 - adaptive.chip_power().0) / baseline.chip_power().0 * 100.0;
        let speedup = (baseline.exec_time.0 - adaptive.exec_time.0) / baseline.exec_time.0 * 100.0;
        Ok((power_saving, speedup))
    }
}

/// Throughput numbers of one sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepStats {
    /// Grid points solved.
    pub points: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock duration of the sweep in seconds.
    pub elapsed_secs: f64,
    /// Cache counters over the sweep's cache.
    pub cache: CacheStats,
}

impl SweepStats {
    /// Grid points per wall-clock second.
    #[must_use]
    pub fn points_per_sec(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.points as f64 / self.elapsed_secs
        }
    }
}

/// The merged, index-ordered output of one sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The spec that was run.
    pub spec: SweepSpec,
    /// One result per solved grid point, ordered by grid index.
    /// Quarantined points are absent here and listed in
    /// [`SweepReport::failed_points`] instead.
    pub results: Vec<PointResult>,
    /// Grid points quarantined after bounded panic retries, ordered by
    /// index. Empty on a healthy run.
    pub failed_points: Vec<FailedPoint>,
    /// Throughput and cache counters (not part of the deterministic
    /// payload — see [`SweepReport::results_json`]).
    pub stats: SweepStats,
}

impl SweepReport {
    /// The result of one grid cell, if it was part of the spec.
    #[must_use]
    pub fn get(
        &self,
        workload: &str,
        cores: usize,
        placement: Placement,
        mode: GuardbandMode,
    ) -> Option<&PointResult> {
        self.results.iter().find(|r| {
            r.point.workload == workload
                && r.point.cores == cores
                && r.point.placement == placement
                && r.point.mode == mode
        })
    }

    /// The outcome of one grid cell.
    #[must_use]
    pub fn outcome(
        &self,
        workload: &str,
        cores: usize,
        placement: Placement,
        mode: GuardbandMode,
    ) -> Option<&Outcome> {
        self.get(workload, cores, placement, mode)
            .map(|r| &r.outcome)
    }

    /// Socket-0 power saving of `mode` over the static point on the same
    /// assignment, percent. Requires both points in the grid.
    #[must_use]
    pub fn power_saving_percent(
        &self,
        workload: &str,
        cores: usize,
        placement: Placement,
        mode: GuardbandMode,
    ) -> Option<f64> {
        let st = self.outcome(workload, cores, placement, GuardbandMode::StaticGuardband)?;
        let ad = self.outcome(workload, cores, placement, mode)?;
        Some((st.chip_power().0 - ad.chip_power().0) / st.chip_power().0 * 100.0)
    }

    /// Frequency boost of `mode` over the static point on the same
    /// assignment, percent.
    #[must_use]
    pub fn frequency_boost_percent(
        &self,
        workload: &str,
        cores: usize,
        placement: Placement,
        mode: GuardbandMode,
    ) -> Option<f64> {
        let st = self.outcome(workload, cores, placement, GuardbandMode::StaticGuardband)?;
        let ad = self.outcome(workload, cores, placement, mode)?;
        Some(
            (ad.summary.avg_running_freq.0 - st.summary.avg_running_freq.0)
                / st.summary.avg_running_freq.0
                * 100.0,
        )
    }

    /// The deterministic payload: the results serialized as JSON. Two
    /// sweeps of the same spec produce byte-identical strings regardless
    /// of worker count or cache temperature.
    #[must_use]
    pub fn results_json(&self) -> String {
        serde::json::to_string(&self.results)
    }

    /// The fixed-width grid table, exactly as `ags sweep` prints it.
    /// Shared by the CLI and the `ags serve` daemon so a served task's
    /// result is byte-identical to the standalone command's stdout.
    #[must_use]
    pub fn render_table(&self) -> String {
        render_results_table(&self.results)
    }

    /// The grid as CSV, exactly as `ags sweep --csv` writes it. Floats
    /// are formatted in Rust's shortest round-trip form (`{:?}`), so an
    /// interrupted-then-resumed campaign reproduces the reference file
    /// byte for byte.
    #[must_use]
    pub fn render_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "index,workload,cores,placement,mode,chip_w,total_w,avg_mhz,undervolt_mv,exec_s,energy_j,edp\n",
        );
        for r in &self.results {
            let o = &r.outcome;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:?},{:?},{:?},{:?},{:?},{:?},{:?}",
                r.point.index,
                r.point.workload,
                r.point.cores,
                r.point.placement.label(),
                r.point.mode,
                o.chip_power().0,
                o.total_power().0,
                o.summary.avg_running_freq.0,
                o.summary.socket0().undervolt.millivolts(),
                o.exec_time.0,
                o.energy.0,
                o.edp
            );
        }
        out
    }
}

/// Renders sweep results as the fixed-width grid table (header plus one
/// row per point, in the order given). Free function so callers holding
/// a per-task slice of a merged batch report can render it without
/// rebuilding a [`SweepReport`].
#[must_use]
pub fn render_results_table(results: &[PointResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5}  {:<16} {:>5}  {:<12} {:<10} {:>8} {:>9} {:>8} {:>8}",
        "point", "workload", "cores", "placement", "mode", "chip W", "total W", "MHz", "UV mV"
    );
    for r in results {
        let _ = writeln!(
            out,
            "{:>5}  {:<16} {:>5}  {:<12} {:<10} {:>8.1} {:>9.1} {:>8.0} {:>8.1}",
            r.point.index,
            r.point.workload,
            r.point.cores,
            r.point.placement.label(),
            r.point.mode.to_string(),
            r.outcome.chip_power().0,
            r.outcome.total_power().0,
            r.outcome.summary.avg_running_freq.0,
            r.outcome.summary.socket0().undervolt.millivolts()
        );
    }
    out
}

/// A test hook deciding whether solving a grid point should panic.
/// Exercises the quarantine path without touching the solver.
pub type PanicInjector = Arc<dyn Fn(&GridPoint) -> bool + Send + Sync>;

/// Options for [`SweepEngine::run_durable`]: journaling, cancellation,
/// retry policy, and the panic-injection test hook.
#[derive(Default)]
pub struct SweepRunOptions {
    /// Journal, cancellation and retry settings.
    pub durable: DurableOptions,
    /// When set, points the injector selects panic instead of solving.
    pub panic_injector: Option<PanicInjector>,
}

impl fmt::Debug for SweepRunOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepRunOptions")
            .field("durable", &self.durable)
            .field("panic_injector", &self.panic_injector.is_some())
            .finish()
    }
}

/// Entries kept in an engine's compiled-spec memo before it is cleared
/// wholesale. A spec compiles in well under a millisecond, so eviction
/// only ever costs a recompile.
const COMPILED_SPEC_MEMO_CAPACITY: usize = 64;

/// The parallel sweep runner.
#[derive(Debug, Clone)]
pub struct SweepEngine {
    jobs: usize,
    cache: Arc<SolveCache>,
    /// Compiled-spec memo, keyed by the spec's canonical JSON hash and
    /// shared by clones of this engine.
    compiled: Arc<Mutex<HashMap<u64, Arc<CompiledSpec>>>>,
}

impl SweepEngine {
    /// An engine with `jobs` workers (0 = available parallelism), using
    /// the process-wide global cache.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        SweepEngine::with_cache(jobs, SolveCache::global())
    }

    /// An engine with an explicit cache (e.g. a cold one in tests).
    #[must_use]
    pub fn with_cache(jobs: usize, cache: Arc<SolveCache>) -> Self {
        SweepEngine {
            jobs: resolve_jobs(jobs),
            cache,
            compiled: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The resolved worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The cache in use.
    #[must_use]
    pub fn cache(&self) -> &Arc<SolveCache> {
        &self.cache
    }

    /// Runs the spec's full grid and merges the results by grid index.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the spec is invalid (unknown workload,
    /// empty dimension, impossible core count) or a solve fails; with
    /// several failures the lowest-indexed one is reported, so errors
    /// are deterministic too.
    pub fn run(&self, spec: &SweepSpec) -> Result<SweepReport, SimError> {
        self.run_durable(spec, &SweepRunOptions::default())
    }

    /// [`SweepEngine::run`] with the durability contract: an optional
    /// crash-consistent journal of completed points (resumable after a
    /// crash or SIGKILL), per-point panic isolation with bounded retries
    /// and quarantine, and cooperative cancellation.
    ///
    /// An interrupted-then-resumed run produces byte-identical reports
    /// to an uninterrupted run at any worker count: results merge by
    /// grid index and the journal round-trips every float in Rust's
    /// shortest round-trip form.
    ///
    /// # Errors
    ///
    /// Everything [`SweepEngine::run`] reports, plus
    /// [`SimError::Journal`] for journal I/O or manifest mismatch and
    /// [`SimError::Interrupted`] when the cancel token fired (the
    /// journal, if any, is flushed first).
    pub fn run_durable(
        &self,
        spec: &SweepSpec,
        options: &SweepRunOptions,
    ) -> Result<SweepReport, SimError> {
        let started = Instant::now();
        let spec_json = spec.to_json();
        let compiled = self.compile(spec, &spec_json)?;
        let points = &compiled.points;
        let modes_per_block = compiled.modes.len().max(1);

        // Journals are the exception: the common in-memory path skips the
        // manifest serialization and the filesystem open entirely.
        let opened = if matches!(options.durable.journal, JournalMode::Off) {
            OpenedJournal {
                journal: None,
                entries: Vec::new(),
                skipped_segments: 0,
            }
        } else {
            options
                .durable
                .journal
                .open_with::<PointResult>(&spec.manifest(), options.durable.fs.clone())?
        };
        // The manifest fingerprint already pins the spec, so a recovered
        // entry that disagrees with the grid means on-disk corruption
        // that slipped past the segment checksums — refuse it.
        for (idx, result) in &opened.entries {
            if *idx >= points.len() || result.point != points[*idx] {
                return Err(SimError::Journal {
                    reason: format!("recovered entry {idx} does not match the spec's grid"),
                });
            }
        }

        // Chunked claiming hands all modes of one assignment block — one
        // cache lane block — to the same worker, so its scratch simulation
        // is reset (not rebuilt) between modes and the whole block is
        // probed from the cache in one lock acquisition.
        let solved = run_durable_indexed(
            self.jobs,
            points.len(),
            modes_per_block,
            SweepScratch::new,
            |scratch, idx| {
                if let Some(inject) = &options.panic_injector {
                    if inject(&points[idx]) {
                        panic!("injected panic at grid point {idx}");
                    }
                }
                self.solve_point(&compiled, idx, scratch)
            },
            opened,
            &options.durable,
        )?;

        Ok(SweepReport {
            spec: spec.clone(),
            results: solved.results.into_iter().flatten().collect(),
            failed_points: solved.failed,
            stats: SweepStats {
                points: points.len(),
                jobs: self.jobs,
                elapsed_secs: started.elapsed().as_secs_f64(),
                // The per-sweep report keeps this cache's own counters;
                // the registry families aggregate across the process.
                cache: self.cache.counters(),
            },
        })
    }

    /// Expands and fingerprints a spec, memoized on the spec's canonical
    /// JSON. A warm rerun of the same spec — the steady state of bench
    /// loops and repeated campaigns — skips validation, catalog lookup,
    /// assignment construction and, dominant on that path, the serde
    /// fingerprinting of every block.
    fn compile(&self, spec: &SweepSpec, spec_json: &str) -> Result<Arc<CompiledSpec>, SimError> {
        let memo_key = fnv64(spec_json.as_bytes());
        if let Some(hit) = self
            .compiled
            .lock()
            .expect("compiled-spec memo lock")
            .get(&memo_key)
        {
            return Ok(Arc::clone(hit));
        }

        let catalog = Catalog::shared();
        spec.validate(catalog)?;
        let profiles: Vec<&WorkloadProfile> = spec
            .workloads
            .iter()
            .map(|name| catalog.require(name))
            .collect::<Result<_, _>>()?;
        let points = spec.grid_points();
        // Points are expanded workload-major, so a point's profile is
        // found by integer division with the per-workload block size.
        let block = spec.cores.len() * spec.placements.len() * spec.modes.len();

        // Every point shares the execution model; only the per-point
        // config (seed) varies. Fingerprint the model once, not per solve.
        let exec_fp = fingerprint(&ExecutionModel::power7plus()).rotate_left(17);

        // Modes are the innermost grid dimension, so every run of
        // `modes.len()` consecutive points shares one (workload, cores,
        // placement) assignment and one seed. Build the experiment, the
        // assignment and both cache fingerprints once per such block: on
        // a warm cache each point is then a pure hash lookup, and on a
        // cold cache the workers reuse one simulation per block.
        let modes_per_block = spec.modes.len();
        let mut blocks = Vec::with_capacity(points.len() / modes_per_block.max(1));
        for chunk in points.chunks(modes_per_block.max(1)) {
            let point = &chunk[0];
            let profile = profiles[point.index / block];
            let mut experiment = Experiment::power7plus(spec.point_seed(point))
                .with_ticks(spec.measure_ticks, spec.warmup_ticks);
            if let Some(plan) = &spec.faults {
                experiment = experiment.with_faults(plan.clone());
            }
            let experiment_fp = fingerprint(experiment.config()) ^ exec_fp;
            let fault_fp = experiment.fault_fingerprint();
            let assignment = point.placement.assignment(profile, point.cores)?;
            let assignment_fp = fingerprint(&assignment);
            blocks.push(BlockContext {
                experiment,
                experiment_fp,
                assignment,
                assignment_fp,
                fault_fp,
            });
        }

        let compiled = Arc::new(CompiledSpec {
            points,
            blocks,
            modes: spec.modes.clone(),
        });
        let mut memo = self.compiled.lock().expect("compiled-spec memo lock");
        if memo.len() >= COMPILED_SPEC_MEMO_CAPACITY {
            // Coarse eviction, like the solve cache: recompiling is cheap,
            // unbounded growth is not.
            memo.clear();
        }
        memo.insert(memo_key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Solves one point, reporting whether it was freshly computed
    /// (journal-worthy) or a cache hit (free to reproduce on resume).
    ///
    /// The first point a worker sees of an assignment block probes the
    /// block's whole cache lane block — every guardband mode — then
    /// solves every lane the probe missed as *one wide-lane group*
    /// ([`run_group`]): one scratch simulation per missing mode, all of
    /// their sockets converging as lanes of a single
    /// `SolveBatch<`[`GROUP_SOLVE_LANES`]`>`. Subsequent points of the
    /// block are answered from the staged lanes without touching the
    /// cache again.
    fn solve_point(
        &self,
        compiled: &CompiledSpec,
        idx: usize,
        scratch: &mut SweepScratch,
    ) -> Result<(PointResult, bool), SimError> {
        let modes_per_block = compiled.modes.len().max(1);
        let block_idx = idx / modes_per_block;
        let lane = idx % modes_per_block;
        let ctx = &compiled.blocks[block_idx];
        let point = &compiled.points[idx];

        if scratch.prefetched_block != Some(block_idx) {
            scratch.prefetched_block = Some(block_idx);
            self.cache.probe_lanes(
                ctx.experiment_fp,
                ctx.assignment_fp,
                &compiled.modes,
                ctx.experiment.measure_ticks(),
                ctx.experiment.warmup_ticks(),
                ctx.fault_fp,
                &mut scratch.prefetched,
            );
            scratch.computed.clear();
            scratch.computed.resize(scratch.prefetched.len(), false);
            if scratch.prefetched.iter().any(Option::is_none) {
                self.solve_block_group(compiled, block_idx, scratch)?;
            }
        }
        let computed = scratch.computed.get(lane).copied().unwrap_or(false);
        if let Some(outcome) = scratch
            .prefetched
            .get_mut(lane)
            .and_then(|slot| slot.take())
        {
            return Ok((
                PointResult {
                    point: point.clone(),
                    outcome: (*outcome).clone(),
                },
                computed,
            ));
        }

        // A lane can still be empty here when an earlier attempt at this
        // block panicked mid-group (the retry re-enters with the block
        // already marked prefetched). Solve it solo, memoized as before.
        let (outcome, computed) = self.cache.solve_with_status(
            ctx.experiment_fp,
            ctx.assignment_fp,
            point.mode,
            ctx.experiment.measure_ticks(),
            ctx.experiment.warmup_ticks(),
            ctx.fault_fp,
            || {
                let sim = match scratch.sims.first_mut() {
                    Some(sim) if scratch.sims_block == Some(block_idx) => sim,
                    _ => {
                        let sim = ctx
                            .experiment
                            .build_simulation(&ctx.assignment, point.mode)?;
                        scratch.sims.clear();
                        scratch.sims.push(sim);
                        scratch.sims_block = Some(block_idx);
                        &mut scratch.sims[0]
                    }
                };
                ctx.experiment.run_with(sim, point.mode)
            },
        )?;
        Ok((
            PointResult {
                point: point.clone(),
                outcome: (*outcome).clone(),
            },
            computed,
        ))
    }

    /// Solves every lane the block probe missed, batching all of their
    /// sockets through one wide solve group. Cold blocks — the dominant
    /// case on a fresh campaign — thus converge `modes.len()` runs in a
    /// single kernel pass per tick instead of one pass per mode.
    ///
    /// Each group member is inserted into the cache through the same
    /// memoized path a solo solve uses, so hit/miss accounting, journal
    /// `computed` flags and cross-worker sharing are unchanged.
    fn solve_block_group(
        &self,
        compiled: &CompiledSpec,
        block_idx: usize,
        scratch: &mut SweepScratch,
    ) -> Result<(), SimError> {
        let ctx = &compiled.blocks[block_idx];
        let missing: Vec<usize> = scratch
            .prefetched
            .iter()
            .enumerate()
            .filter_map(|(lane, slot)| slot.is_none().then_some(lane))
            .collect();

        // One simulation per missing lane: the first is built (or reused
        // from the previous block's group when the assignment matches),
        // the rest are clones. `reset` reproduces fresh construction
        // bitwise, so a clone's history is irrelevant.
        if scratch.sims_block != Some(block_idx) {
            scratch.sims.clear();
            scratch.sims_block = Some(block_idx);
        }
        if scratch.sims.is_empty() {
            scratch.sims.push(
                ctx.experiment
                    .build_simulation(&ctx.assignment, compiled.modes[missing[0]])?,
            );
        }
        while scratch.sims.len() < missing.len() {
            let clone = scratch.sims[0].clone();
            scratch.sims.push(clone);
        }
        for (slot, &lane) in missing.iter().enumerate() {
            scratch.sims[slot].reset(compiled.modes[lane])?;
        }

        let mut refs: Vec<&mut Simulation> = scratch.sims[..missing.len()].iter_mut().collect();
        let summaries = run_group::<GROUP_SOLVE_LANES>(
            &mut refs,
            ctx.experiment.measure_ticks(),
            ctx.experiment.warmup_ticks(),
        );

        for (&lane, summary) in missing.iter().zip(summaries) {
            let outcome = ctx
                .experiment
                .outcome_from_summary(&ctx.assignment, summary);
            // Registers the miss and publishes the entry; a duplicate
            // mode in the spec degrades to a hit on its second lane,
            // exactly as the solo path would.
            let (outcome, computed) = self.cache.solve_with_status(
                ctx.experiment_fp,
                ctx.assignment_fp,
                compiled.modes[lane],
                ctx.experiment.measure_ticks(),
                ctx.experiment.warmup_ticks(),
                ctx.fault_fp,
                || Ok(outcome),
            )?;
            scratch.prefetched[lane] = Some(outcome);
            scratch.computed[lane] = computed;
        }
        Ok(())
    }
}

/// A spec compiled to its solve plan: the expanded grid, the per-block
/// solve contexts and the mode (lane) dimension. Memoized per engine —
/// see [`SweepEngine::compile`].
#[derive(Debug)]
struct CompiledSpec {
    points: Vec<GridPoint>,
    blocks: Vec<BlockContext>,
    modes: Vec<GuardbandMode>,
}

/// Lane width of the sweep workers' group solves: four two-socket
/// servers per [`crate::solve::SolveBatch`] pass. Wide enough to converge
/// a whole three-mode assignment block (6 lanes) in one kernel pass,
/// measured profitable over 2-, 4- and 16-lane batches in
/// `benches/solve.rs`.
pub const GROUP_SOLVE_LANES: usize = 8;

/// Per-worker scratch carried across a sweep: the reusable simulations
/// (tagged with the assignment block they were built for, one per
/// group-solved mode) and the current block's staged cache lanes with
/// their journal `computed` flags.
struct SweepScratch {
    sims: Vec<Simulation>,
    sims_block: Option<usize>,
    prefetched_block: Option<usize>,
    prefetched: Vec<Option<Arc<Outcome>>>,
    computed: Vec<bool>,
}

impl SweepScratch {
    fn new() -> Self {
        SweepScratch {
            sims: Vec::new(),
            sims_block: None,
            prefetched_block: None,
            prefetched: Vec::new(),
            computed: Vec::new(),
        }
    }
}

/// One (workload, cores, placement) grid block's precomputed solve
/// context: the seeded experiment, the assignment, and both cache
/// fingerprints. Shared by the block's `modes.len()` points.
#[derive(Debug, Clone)]
struct BlockContext {
    experiment: Experiment,
    experiment_fp: u64,
    assignment: Assignment,
    assignment_fp: u64,
    fault_fp: u64,
}

/// Resolves a `--jobs` value: 0 means available parallelism.
#[must_use]
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        return jobs;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f(0..n)` across `jobs` scoped worker threads and returns the
/// results in index order, regardless of which worker computed what.
///
/// This is the engine's low-level primitive; the studies with bespoke
/// per-point configurations (ambient sweeps, aged silicon) use it
/// directly instead of going through [`SweepSpec`].
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(jobs, n, 1, || (), |(), idx| f(idx))
}

/// Like [`run_indexed`], but each worker carries mutable state created by
/// `init`, and claims `chunk` consecutive indices at a time. The sweep
/// engine uses the state for a scratch [`Simulation`] and sets `chunk` to
/// the number of guardband modes, so every mode of one assignment lands
/// on the worker that already built that assignment's simulation.
///
/// Results are returned in index order regardless of which worker
/// computed what, and `chunk` never changes the values — only the
/// work-to-worker mapping.
pub fn run_indexed_with<S, T, I, F>(jobs: usize, n: usize, chunk: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let chunk = chunk.max(1);
    let jobs = resolve_jobs(jobs).min(n.max(1));
    if jobs <= 1 {
        let mut state = init();
        return (0..n)
            .map(|idx| {
                telemetry::sweep_points_claimed().inc();
                let span = trace::span("sweep_point", idx as u64);
                let _ctx = span.push();
                f(&mut state, idx)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    // Workers inherit the coordinator's trace context (the campaign root)
    // so their sweep_point spans parent identically at any worker count.
    let ctx = trace::current_context();
    let mut chunks: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let _tctx = trace::push_context(ctx);
                    let mut state = init();
                    let mut local = Vec::new();
                    let mut ready_at = Instant::now();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            // Scoped joins may return before TLS
                            // destructors run; flush the span ring here
                            // or the coordinator's collect can miss it.
                            trace::flush();
                            return local;
                        }
                        telemetry::sweep_chunk_wait().observe(ready_at.elapsed().as_secs_f64());
                        for idx in start..(start + chunk).min(n) {
                            telemetry::sweep_points_claimed().inc();
                            let span = trace::span("sweep_point", idx as u64);
                            let _ctx = span.push();
                            local.push((idx, f(&mut state, idx)));
                        }
                        ready_at = Instant::now();
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for chunk in &mut chunks {
        for (idx, value) in chunk.drain(..) {
            slots[idx] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every grid index solved"))
        .collect()
}

/// The solve-cache fingerprint of an experiment: its full server config
/// (rails, curves, policy, seed) mixed with its execution model.
#[must_use]
pub fn experiment_fingerprint(experiment: &Experiment) -> u64 {
    fingerprint(experiment.config()) ^ fingerprint(experiment.exec_model()).rotate_left(17)
}

fn fingerprint<T: Serialize + ?Sized>(value: &T) -> u64 {
    fnv64(serde::json::to_string(value).as_bytes())
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec::new(vec!["raytrace".into(), "radix".into()], vec![1, 4])
            .with_modes(vec![
                GuardbandMode::StaticGuardband,
                GuardbandMode::Undervolt,
            ])
            .with_ticks(4, 2)
    }

    #[test]
    fn grid_expansion_is_workload_major_and_indexed() {
        let spec = tiny_spec();
        let points = spec.grid_points();
        assert_eq!(points.len(), spec.len());
        assert_eq!(points[0].workload, "raytrace");
        assert_eq!(points[0].cores, 1);
        assert_eq!(points[0].mode, GuardbandMode::StaticGuardband);
        assert_eq!(points[1].mode, GuardbandMode::Undervolt);
        assert_eq!(points[4].workload, "radix");
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn point_seed_ignores_mode_but_not_assignment() {
        let spec = tiny_spec();
        let points = spec.grid_points();
        // points 0/1: same assignment, different mode → same seed.
        assert_eq!(spec.point_seed(&points[0]), spec.point_seed(&points[1]));
        // different cores → different seed.
        assert_ne!(spec.point_seed(&points[0]), spec.point_seed(&points[2]));
        // different master seed → different point seed.
        let reseeded = tiny_spec().with_seed(7);
        assert_ne!(spec.point_seed(&points[0]), reseeded.point_seed(&points[0]));
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let catalog = Catalog::power7plus();
        assert!(tiny_spec().validate(&catalog).is_ok());
        let unknown = SweepSpec::new(vec!["nope".into()], vec![1]);
        assert!(matches!(
            unknown.validate(&catalog),
            Err(SimError::Workload(_))
        ));
        let empty = SweepSpec::new(vec![], vec![1]);
        assert!(matches!(
            empty.validate(&catalog),
            Err(SimError::InvalidConfig { .. })
        ));
        let too_wide = SweepSpec::new(vec!["radix".into()], vec![9]);
        assert!(matches!(
            too_wide.validate(&catalog),
            Err(SimError::InvalidAssignment { .. })
        ));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = tiny_spec().with_placements(vec![Placement::SingleSocket, Placement::Borrowed]);
        let json = serde::json::to_string(&spec);
        let back: SweepSpec = serde::json::from_str(&json).unwrap();
        assert_eq!(back, spec);

        let faulted = tiny_spec().with_faults(p7_faults::FaultPlan::named("dead-cpm").unwrap());
        let back: SweepSpec = serde::json::from_str(&faulted.to_json()).unwrap();
        assert_eq!(back, faulted);
    }

    #[test]
    fn spec_files_without_a_faults_key_still_parse() {
        // Spec files written before the fault dimension existed have no
        // "faults" key; they must read back as healthy sweeps.
        let spec = tiny_spec();
        let json = spec.to_json();
        let legacy = json.replace(",\"faults\":null", "");
        assert_ne!(legacy, json, "fixture must actually drop the key");
        let back = SweepSpec::from_json(&legacy).unwrap();
        assert_eq!(back, spec);
        assert!(back.faults.is_none());
    }

    #[test]
    fn faulted_sweep_never_answers_from_healthy_cache_entries() {
        // Same engine, same cache, same grid — with and without a fault
        // plan. The faulted sweep must re-solve every point (distinct
        // cache keys) and produce different numbers: a dead CPM reads
        // tap 0, which engages the fail-safe on its core.
        let spec = SweepSpec::new(vec!["raytrace".into()], vec![2])
            .with_modes(vec![GuardbandMode::Undervolt])
            .with_ticks(20, 10);
        let cache = Arc::new(SolveCache::new());
        let engine = SweepEngine::with_cache(1, cache.clone());
        let healthy = engine.run(&spec).unwrap();
        let cold = cache.counters();
        assert_eq!(cold.misses as usize, spec.len());

        let faulted_spec = spec
            .clone()
            .with_faults(p7_faults::FaultPlan::named("dead-cpm").unwrap());
        let faulted = engine.run(&faulted_spec).unwrap();
        let after = cache.counters();
        assert_eq!(
            after.misses as usize,
            spec.len() + faulted_spec.len(),
            "faulted points must miss, not hit healthy entries"
        );
        assert_ne!(
            healthy.results_json(),
            faulted.results_json(),
            "a dead CPM must change the undervolt trajectory"
        );

        // And the faulted entries answer repeat faulted sweeps.
        engine.run(&faulted_spec).unwrap();
        assert_eq!(cache.counters().misses, after.misses);
    }

    #[test]
    fn probe_lanes_counts_hits_per_present_lane() {
        // A block probe is one lock acquisition but N lane lookups: the
        // hit counter must advance once per *present* lane, and absent
        // lanes must come back `None` without touching any counter
        // (their miss is charged by the solve that follows).
        let cache = SolveCache::new();
        let exp = Experiment::power7plus(3).with_ticks(3, 1);
        let w = Catalog::power7plus().get("radix").unwrap().clone();
        let a = Assignment::single_socket(&w, 2).unwrap();
        let (exp_fp, a_fp) = (fingerprint(exp.config()), fingerprint(&a));
        let modes = GuardbandMode::all();

        // Populate exactly one of the three mode lanes.
        cache
            .solve_with(exp_fp, a_fp, modes[1], 3, 1, 0, || exp.run(&a, modes[1]))
            .unwrap();
        let seeded = cache.counters();
        assert_eq!((seeded.hits, seeded.misses), (0, 1));

        let mut lanes = Vec::new();
        cache.probe_lanes(exp_fp, a_fp, &modes, 3, 1, 0, &mut lanes);
        assert_eq!(lanes.len(), 3);
        assert!(lanes[0].is_none() && lanes[2].is_none());
        assert!(lanes[1].is_some(), "the seeded lane must be prefetched");
        let probed = cache.counters();
        assert_eq!(probed.hits, 1, "one present lane = one hit");
        assert_eq!(probed.misses, 1, "absent lanes charge nothing here");

        // A different fault fingerprint vacates every lane.
        cache.probe_lanes(exp_fp, a_fp, &modes, 3, 1, 0xdead, &mut lanes);
        assert!(lanes.iter().all(Option::is_none));
        assert_eq!(cache.counters().hits, 1);
    }

    #[test]
    fn mixed_warm_sweep_counts_hits_and_misses_per_lane() {
        // Pre-populate one mode lane of every assignment block via a
        // single-mode sweep, then run the full three-mode grid: each
        // block must report exactly one hit (the warm lane) and two
        // misses — per-lane accounting, not per-batch.
        let full = SweepSpec::new(vec!["raytrace".into(), "radix".into()], vec![1, 4])
            .with_modes(GuardbandMode::all().to_vec())
            .with_ticks(4, 2);
        let subset = full.clone().with_modes(vec![GuardbandMode::Undervolt]);
        let blocks = subset.len();

        let cache = Arc::new(SolveCache::new());
        let engine = SweepEngine::with_cache(2, cache.clone());
        engine.run(&subset).unwrap();
        assert_eq!(cache.counters().misses as usize, blocks);

        let report = engine.run(&full).unwrap();
        assert_eq!(
            report.stats.cache.hits as usize, blocks,
            "one warm lane per block"
        );
        assert_eq!(
            report.stats.cache.misses as usize,
            full.len(),
            "the two cold lanes of each block miss"
        );
    }

    #[test]
    fn run_indexed_preserves_order_at_any_worker_count() {
        let serial = run_indexed(1, 17, |i| i * i);
        let parallel = run_indexed(8, 17, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial[16], 256);
        assert!(run_indexed(4, 0, |i| i).is_empty());
    }

    #[test]
    fn run_indexed_with_preserves_order_for_any_chunk() {
        let serial = run_indexed_with(1, 17, 3, || (), |(), i| i * i);
        for jobs in [2, 8] {
            for chunk in [1, 2, 3, 5, 17, 100] {
                let chunked = run_indexed_with(jobs, 17, chunk, || (), |(), i| i * i);
                assert_eq!(serial, chunked, "jobs {jobs} chunk {chunk}");
            }
        }
        assert!(run_indexed_with(4, 0, 2, || (), |(), i| i).is_empty());
        // chunk 0 is treated as 1 rather than looping forever.
        assert_eq!(run_indexed_with(2, 3, 0, || (), |(), i| i), vec![0, 1, 2]);
    }

    #[test]
    fn run_indexed_with_hands_chunks_to_one_worker() {
        // Each worker tags results with its own state; consecutive
        // indices within a chunk must share a tag.
        let counter = AtomicUsize::new(0);
        let tagged = run_indexed_with(
            4,
            12,
            3,
            || counter.fetch_add(1, Ordering::Relaxed),
            |worker, idx| (idx, *worker),
        );
        for chunk in tagged.chunks(3) {
            assert!(
                chunk.iter().all(|(_, w)| *w == chunk[0].1),
                "chunk split across workers: {chunk:?}"
            );
        }
    }

    #[test]
    fn scratch_reuse_matches_direct_runs() {
        // The engine's reused-and-reset scratch simulations must produce
        // bitwise the same outcomes as a fresh Experiment::run per point.
        let spec = tiny_spec();
        let engine = SweepEngine::with_cache(1, Arc::new(SolveCache::new()));
        let report = engine.run(&spec).unwrap();
        let catalog = Catalog::power7plus();
        for r in &report.results {
            let profile = catalog.require(&r.point.workload).unwrap();
            let assignment = r
                .point
                .placement
                .assignment(profile, r.point.cores)
                .unwrap();
            let direct = Experiment::power7plus(spec.point_seed(&r.point))
                .with_ticks(spec.measure_ticks, spec.warmup_ticks)
                .run(&assignment, r.point.mode)
                .unwrap();
            assert_eq!(r.outcome, direct, "point {}", r.point.index);
        }
    }

    #[test]
    fn sweep_is_identical_across_worker_counts() {
        let spec = tiny_spec();
        let cold = SweepEngine::with_cache(1, Arc::new(SolveCache::new()));
        let wide = SweepEngine::with_cache(8, Arc::new(SolveCache::new()));
        let a = cold.run(&spec).unwrap();
        let b = wide.run(&spec).unwrap();
        assert_eq!(a.results_json(), b.results_json());
    }

    #[test]
    fn cache_answers_repeat_solves() {
        let cache = Arc::new(SolveCache::new());
        let engine = SweepEngine::with_cache(2, cache.clone());
        let spec = tiny_spec();
        let first = engine.run(&spec).unwrap();
        let after_cold = cache.counters();
        // Every grid cell is a distinct (assignment, mode) key, so the
        // cold sweep misses once per point…
        assert_eq!(after_cold.misses as usize, first.results.len());
        let second = engine.run(&spec).unwrap();
        let after_warm = cache.counters();
        // …and the warm sweep answers every point from the cache.
        assert_eq!(after_warm.misses, after_cold.misses, "warm run re-solved");
        assert_eq!(after_warm.hits, after_cold.hits + spec.len() as u64);
        assert_eq!(first.results_json(), second.results_json());
    }

    #[test]
    fn report_lookups_and_derived_metrics() {
        let engine = SweepEngine::with_cache(0, Arc::new(SolveCache::new()));
        let report = engine.run(&tiny_spec()).unwrap();
        let saving = report
            .power_saving_percent(
                "raytrace",
                1,
                Placement::SingleSocket,
                GuardbandMode::Undervolt,
            )
            .unwrap();
        assert!(saving > 0.0, "undervolting must save power: {saving}%");
        assert!(report
            .outcome(
                "raytrace",
                2,
                Placement::SingleSocket,
                GuardbandMode::Undervolt
            )
            .is_none());
        assert_eq!(report.stats.points, report.results.len());
        assert!(report.stats.points_per_sec() > 0.0);
    }

    #[test]
    fn fig10_grid_covers_the_scatter_set() {
        let spec = SweepSpec::fig10_grid();
        assert_eq!(spec.cores, vec![8]);
        assert!(
            spec.workloads.len() >= 40,
            "scatter set has {} workloads",
            spec.workloads.len()
        );
        spec.validate(&Catalog::power7plus()).unwrap();
    }

    #[test]
    fn cached_experiment_matches_plain_runs() {
        let exp = Experiment::power7plus(42).with_ticks(4, 2);
        let cached = CachedExperiment::with_cache(exp.clone(), Arc::new(SolveCache::new()));
        let w = Catalog::power7plus().get("radix").unwrap().clone();
        let a = Assignment::single_socket(&w, 2).unwrap();
        let plain = exp.run(&a, GuardbandMode::Undervolt).unwrap();
        let memo = cached.run(&a, GuardbandMode::Undervolt).unwrap();
        assert_eq!(*memo, plain);
        let again = cached.run(&a, GuardbandMode::Undervolt).unwrap();
        assert_eq!(cached.cache().counters().hits, 1);
        assert_eq!(*again, plain);
    }

    #[test]
    fn placement_labels_round_trip() {
        for p in Placement::all() {
            assert_eq!(Placement::parse(p.label()), Some(p));
        }
        assert_eq!(Placement::parse("turbo"), None);
    }

    #[test]
    fn cache_stats_without_a_contended_key_still_parse() {
        // Reports serialized before the cache was sharded have no
        // "contended" key; they must read back as uncontended.
        let stats = CacheStats {
            hits: 3,
            misses: 2,
            entries: 1,
            evictions: 4,
            contended: 7,
        };
        let json = serde::json::to_string(&stats);
        let back: CacheStats = serde::json::from_str(&json).unwrap();
        assert_eq!(back, stats);

        let legacy = json.replace(",\"contended\":7", "");
        assert_ne!(legacy, json, "fixture must actually drop the key");
        let back: CacheStats = serde::json::from_str(&legacy).unwrap();
        assert_eq!((back.hits, back.evictions, back.contended), (3, 4, 0));
    }

    #[test]
    fn shard_capacity_bounds_entries_and_counts_evictions() {
        // 32 entries over 16 shards = 2 per shard: inserting 200
        // distinct keys must keep the table bounded, with the overflow
        // visible in the eviction counter — entries + evictions always
        // accounts for every insert.
        let cache = SolveCache::with_capacity(32);
        let exp = Experiment::power7plus(11).with_ticks(2, 1);
        let w = Catalog::power7plus().get("radix").unwrap().clone();
        let a = Assignment::single_socket(&w, 1).unwrap();
        let seed = exp.run(&a, GuardbandMode::Undervolt).unwrap();
        for key in 0..200u64 {
            cache
                .solve_with(key, key, GuardbandMode::Undervolt, 2, 1, 0, || {
                    Ok(seed.clone())
                })
                .unwrap();
        }
        let stats = cache.counters();
        assert!(
            stats.entries <= 32,
            "entries {} exceed capacity",
            stats.entries
        );
        assert!(stats.evictions > 0, "200 inserts into 32 slots must evict");
        assert_eq!(stats.entries as u64 + stats.evictions, 200);
        assert_eq!(stats.misses, 200);
    }

    #[test]
    fn sharded_cache_accounting_is_exact_under_concurrent_probes() {
        // Four threads hammer overlapping blocks: every solve_with call
        // counts exactly one hit or one miss whatever the interleaving,
        // so the totals must come out exact — lock waits surface only in
        // the `contended` counter, never in results or accounting.
        let cache = Arc::new(SolveCache::new());
        let exp = Experiment::power7plus(13).with_ticks(2, 1);
        let w = Catalog::power7plus().get("radix").unwrap().clone();
        let a = Assignment::single_socket(&w, 1).unwrap();
        let seed = exp.run(&a, GuardbandMode::Undervolt).unwrap();
        const THREADS: u64 = 4;
        const CALLS: u64 = 400;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for i in 0..CALLS {
                        let key = i % 32;
                        cache
                            .solve_with(key, key, GuardbandMode::Undervolt, 2, 1, 0, || {
                                Ok(seed.clone())
                            })
                            .unwrap();
                    }
                });
            }
        });
        let stats = cache.counters();
        assert_eq!(stats.hits + stats.misses, THREADS * CALLS);
        assert_eq!(stats.entries, 32);
        // 32 distinct keys, each missed by at least its first solver.
        assert!((32..=32 * THREADS).contains(&stats.misses));
    }
}
