//! Journal scrub and repair: the `ags fsck` engine.
//!
//! A journal directory can be damaged in exactly the ways the
//! fault-injection matrix exercises: a torn segment tail, a stray
//! `.tmp` file left by a crash between write and rename, a
//! bit-flipped payload behind a stale checksum, a duplicated segment
//! (an operator `cp` gone wrong), or a numbering gap from a deleted
//! file. Resume already *survives* all of these by skipping corrupt
//! segments, but silently: an operator cannot tell "clean journal"
//! from "journal quietly dropping results". This module makes the
//! damage visible and repairable:
//!
//! * [`scan`] classifies every file in the directory without needing
//!   the campaign's result type — segments are validated down to the
//!   shape every journal kind shares (`[[index, …], …]` with
//!   non-negative integer indices), so one scrubber serves sweep,
//!   resilience, fleet and serve journals alike.
//! * [`repair`] truncates to the last consistent prefix: every segment
//!   from the first gap, corruption or duplicate onward is removed,
//!   along with orphaned temp files. Dropped results simply re-run on
//!   resume; for the serve journal (an event log replayed in order) a
//!   prefix is likewise the only safe cut.
//!
//! The scrub is conservative: files it does not recognize are reported
//! but never deleted.

use crate::error::SimError;
use crate::journal::{fnv64, read_manifest_with, MANIFEST_FILE};
use crate::telemetry;
use crate::vfs::{self, Fs};
use serde::Value;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// What the scrub concluded about `manifest.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestStatus {
    /// Present and well-formed.
    Ok,
    /// Absent. Fine for an empty directory; fatal when segments exist,
    /// since nothing can ever resume them.
    Missing,
    /// Present but unreadable or unparseable.
    Corrupt(String),
}

/// What the scrub concluded about one segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentVerdict {
    /// Checksum and shape verify; carries this many entries.
    Intact(usize),
    /// Bad magic, checksum mismatch, or malformed payload.
    Corrupt(String),
    /// Verifies, but repeats entry indices already recorded by an
    /// earlier segment — a duplicated segment.
    DuplicateEntries(Vec<u64>),
}

/// One scanned segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedSegment {
    /// File name inside the journal directory.
    pub name: String,
    /// The segment number parsed from the name.
    pub number: u64,
    /// The verdict.
    pub verdict: SegmentVerdict,
}

/// The full result of scrubbing one journal directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// The directory scrubbed.
    pub dir: PathBuf,
    /// Manifest verdict.
    pub manifest: ManifestStatus,
    /// Every `seg-*.json` file, ordered by segment number.
    pub segments: Vec<ScannedSegment>,
    /// Orphaned `*.tmp` files (a crash between write and rename).
    pub temp_files: Vec<String>,
    /// Files the scrub does not recognize (reported, never removed).
    pub stray_files: Vec<String>,
    /// First segment number outside the consistent prefix; everything
    /// from here on is removed by [`repair`]. `None` when the segment
    /// chain is fully consistent.
    pub truncate_from: Option<u64>,
    /// Files removed, populated by [`repair`] (empty after [`scan`]).
    pub removed: Vec<String>,
}

impl FsckReport {
    /// True when the journal needs no repair: manifest consistent,
    /// every segment in the consistent prefix, no orphaned temps.
    /// Stray files are warnings, not damage.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        let manifest_ok = match self.manifest {
            ManifestStatus::Ok => true,
            ManifestStatus::Missing => self.segments.is_empty(),
            ManifestStatus::Corrupt(_) => false,
        };
        manifest_ok && self.truncate_from.is_none() && self.temp_files.is_empty()
    }

    /// Renders the report as the CLI prints it.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("fsck {}\n", self.dir.display());
        match &self.manifest {
            ManifestStatus::Ok => out.push_str("  manifest: ok\n"),
            ManifestStatus::Missing if self.segments.is_empty() => {
                out.push_str("  manifest: absent (empty directory, startable fresh)\n");
            }
            ManifestStatus::Missing => {
                out.push_str("  manifest: MISSING with segments present (unresumable)\n");
            }
            ManifestStatus::Corrupt(reason) => {
                let _ = writeln!(out, "  manifest: CORRUPT ({reason})");
            }
        }
        for seg in &self.segments {
            match &seg.verdict {
                SegmentVerdict::Intact(entries) => {
                    let _ = writeln!(out, "  {}: ok ({entries} entries)", seg.name);
                }
                SegmentVerdict::Corrupt(reason) => {
                    let _ = writeln!(out, "  {}: CORRUPT ({reason})", seg.name);
                }
                SegmentVerdict::DuplicateEntries(indices) => {
                    let _ = writeln!(
                        out,
                        "  {}: DUPLICATE (repeats {} earlier entr{})",
                        seg.name,
                        indices.len(),
                        if indices.len() == 1 { "y" } else { "ies" }
                    );
                }
            }
        }
        for name in &self.temp_files {
            let _ = writeln!(out, "  {name}: ORPHANED temp file");
        }
        for name in &self.stray_files {
            let _ = writeln!(out, "  {name}: unrecognized (left alone)");
        }
        if let Some(from) = self.truncate_from {
            let _ = writeln!(out, "  consistent prefix ends before segment {from}");
        }
        for name in &self.removed {
            let _ = writeln!(out, "  removed {name}");
        }
        let verdict = if self.is_clean() { "clean" } else { "DAMAGED" };
        let _ = writeln!(out, "  verdict: {verdict}");
        out
    }
}

/// Scrubs the journal directory at `dir` without modifying it.
///
/// # Errors
///
/// Returns [`SimError::Journal`] only when the directory itself cannot
/// be listed; damage inside it is reported, not raised.
pub fn scan(dir: &Path, fs: &dyn Fs) -> Result<FsckReport, SimError> {
    let names = fs.read_dir(dir).map_err(|e| SimError::Journal {
        reason: format!("cannot list `{}`: {e}", dir.display()),
    })?;
    let manifest = if fs.exists(&dir.join(MANIFEST_FILE)) {
        match read_manifest_with(dir, fs) {
            Ok(_) => ManifestStatus::Ok,
            Err(e) => ManifestStatus::Corrupt(e.to_string()),
        }
    } else {
        ManifestStatus::Missing
    };

    let mut segments: Vec<(u64, String)> = Vec::new();
    let mut temp_files = Vec::new();
    let mut stray_files = Vec::new();
    for name in names {
        if name == MANIFEST_FILE {
            continue;
        }
        if name.ends_with(".tmp") {
            temp_files.push(name);
        } else if let Some(number) = segment_number(&name) {
            segments.push((number, name));
        } else {
            stray_files.push(name);
        }
    }
    segments.sort_unstable();
    temp_files.sort_unstable();
    stray_files.sort_unstable();

    let mut seen_entries: HashSet<u64> = HashSet::new();
    let mut scanned = Vec::with_capacity(segments.len());
    for (number, name) in segments {
        telemetry::fsck_segments_scanned().inc();
        let verdict = match validate_segment(fs, &dir.join(&name)) {
            Err(reason) => SegmentVerdict::Corrupt(reason),
            Ok(indices) => {
                let duplicates: Vec<u64> = indices
                    .iter()
                    .copied()
                    .filter(|idx| seen_entries.contains(idx))
                    .collect();
                if duplicates.is_empty() {
                    seen_entries.extend(&indices);
                    SegmentVerdict::Intact(indices.len())
                } else {
                    SegmentVerdict::DuplicateEntries(duplicates)
                }
            }
        };
        scanned.push(ScannedSegment {
            name,
            number,
            verdict,
        });
    }

    // The consistent prefix: segments numbered 0, 1, 2, … each intact.
    // The first gap, corruption or duplicate ends it; with no manifest
    // nothing can resume, so every segment is outside the prefix.
    let mut truncate_from = None;
    if manifest == ManifestStatus::Missing && !scanned.is_empty() {
        truncate_from = Some(0);
    } else {
        for (expected, seg) in (0u64..).zip(&scanned) {
            if seg.number != expected || !matches!(seg.verdict, SegmentVerdict::Intact(_)) {
                truncate_from = Some(expected.min(seg.number));
                break;
            }
        }
    }

    Ok(FsckReport {
        dir: dir.to_owned(),
        manifest,
        segments: scanned,
        temp_files,
        stray_files,
        truncate_from,
        removed: Vec::new(),
    })
}

/// Scrubs `dir` and repairs it: removes every segment outside the
/// consistent prefix and every orphaned temp file. The returned report
/// describes the state *found* (so the damage stays visible) with
/// [`FsckReport::removed`] listing what was deleted.
///
/// # Errors
///
/// Returns [`SimError::Journal`] when the directory cannot be listed
/// or a removal fails.
pub fn repair(dir: &Path, fs: &dyn Fs) -> Result<FsckReport, SimError> {
    let mut report = scan(dir, fs)?;
    let mut doomed: Vec<String> = report.temp_files.clone();
    if let Some(from) = report.truncate_from {
        doomed.extend(
            report
                .segments
                .iter()
                .filter(|seg| seg.number >= from)
                .map(|seg| seg.name.clone()),
        );
    }
    for name in doomed {
        let path = dir.join(&name);
        fs.remove_file(&path).map_err(|e| SimError::Journal {
            reason: format!("cannot remove `{}`: {e}", path.display()),
        })?;
        telemetry::fsck_segments_repaired().inc();
        report.removed.push(name);
    }
    Ok(report)
}

fn segment_number(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".json")?
        .parse()
        .ok()
}

/// Validates one segment down to the shape every journal kind shares,
/// returning the entry indices it carries.
fn validate_segment(fs: &dyn Fs, path: &Path) -> Result<Vec<u64>, String> {
    let text = vfs::read_to_string(fs, path).map_err(|e| format!("unreadable: {e}"))?;
    let (header, body) = text.split_once('\n').ok_or("no header line")?;
    let mut fields = header.split(' ');
    if fields.next() != Some("p7-journal-segment") {
        return Err("bad magic".to_owned());
    }
    let crc = fields
        .find_map(|f| f.strip_prefix("crc="))
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .ok_or("no checksum")?;
    if fnv64(body.as_bytes()) != crc {
        return Err("checksum mismatch".to_owned());
    }
    let value = Value::parse_json(body).map_err(|e| format!("unparseable payload: {e}"))?;
    let Value::Seq(entries) = value else {
        return Err("payload is not an entry list".to_owned());
    };
    let mut indices = Vec::with_capacity(entries.len());
    for entry in &entries {
        let Value::Seq(pair) = entry else {
            return Err("entry is not an [index, result] pair".to_owned());
        };
        match pair.first() {
            Some(Value::Int(idx)) if *idx >= 0 => {
                indices.push(u64::try_from(*idx).map_err(|_| "entry index overflows")?);
            }
            _ => return Err("entry index is not a non-negative integer".to_owned()),
        }
    }
    Ok(indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{CampaignManifest, Journal};
    use std::fs as std_fs_mod;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("p7-fsck-{tag}-{}", std::process::id()));
        let _ = std_fs_mod::remove_dir_all(&dir);
        dir
    }

    fn journal_with_segments(dir: &Path, segments: usize) -> CampaignManifest {
        let manifest = CampaignManifest::new("sweep", 9, "{\"spec\":1}".to_owned());
        let mut journal: Journal<u64> = Journal::create(dir, &manifest).unwrap();
        for s in 0..segments {
            journal.append(&[(s, s as u64 * 10)]).unwrap();
        }
        manifest
    }

    #[test]
    fn clean_journal_scans_clean() {
        let dir = tmp_dir("clean");
        journal_with_segments(&dir, 3);
        let report = scan(&dir, &*vfs::std_fs()).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.truncate_from, None);
        assert_eq!(report.segments.len(), 3);
        let _ = std_fs_mod::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_resumable() {
        let dir = tmp_dir("torn");
        let manifest = journal_with_segments(&dir, 3);
        // Tear the last segment mid-payload.
        let last = dir.join("seg-00000002.json");
        let text = std_fs_mod::read_to_string(&last).unwrap();
        std_fs_mod::write(&last, &text[..text.len() / 2]).unwrap();
        // And leave a crashed temp file behind.
        std_fs_mod::write(dir.join("seg-00000003.json.tmp"), "partial").unwrap();

        let report = scan(&dir, &*vfs::std_fs()).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.truncate_from, Some(2));
        assert_eq!(report.temp_files, vec!["seg-00000003.json.tmp".to_owned()]);

        let repaired = repair(&dir, &*vfs::std_fs()).unwrap();
        assert_eq!(repaired.removed.len(), 2);
        let rescan = scan(&dir, &*vfs::std_fs()).unwrap();
        assert!(rescan.is_clean(), "{}", rescan.render());
        let resumed = Journal::<u64>::resume(&dir, &manifest).unwrap();
        assert_eq!(resumed.entries, vec![(0, 0), (1, 10)]);
        assert_eq!(resumed.skipped_segments, 0);
        let _ = std_fs_mod::remove_dir_all(&dir);
    }

    #[test]
    fn duplicated_segment_ends_the_prefix() {
        let dir = tmp_dir("dup");
        journal_with_segments(&dir, 2);
        // Copy segment 0 under the next number: same entries again.
        let bytes = std_fs_mod::read(dir.join("seg-00000000.json")).unwrap();
        std_fs_mod::write(dir.join("seg-00000002.json"), bytes).unwrap();
        let report = scan(&dir, &*vfs::std_fs()).unwrap();
        assert_eq!(report.truncate_from, Some(2));
        assert!(matches!(
            report.segments[2].verdict,
            SegmentVerdict::DuplicateEntries(_)
        ));
        let repaired = repair(&dir, &*vfs::std_fs()).unwrap();
        assert_eq!(repaired.removed, vec!["seg-00000002.json".to_owned()]);
        let _ = std_fs_mod::remove_dir_all(&dir);
    }

    #[test]
    fn numbering_gap_ends_the_prefix() {
        let dir = tmp_dir("gap");
        journal_with_segments(&dir, 3);
        std_fs_mod::remove_file(dir.join("seg-00000001.json")).unwrap();
        let report = scan(&dir, &*vfs::std_fs()).unwrap();
        assert_eq!(report.truncate_from, Some(1));
        let repaired = repair(&dir, &*vfs::std_fs()).unwrap();
        assert_eq!(repaired.removed, vec!["seg-00000002.json".to_owned()]);
        let _ = std_fs_mod::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_segments_without_manifest_are_removed() {
        let dir = tmp_dir("orphan");
        journal_with_segments(&dir, 2);
        std_fs_mod::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let report = scan(&dir, &*vfs::std_fs()).unwrap();
        assert_eq!(report.manifest, ManifestStatus::Missing);
        assert_eq!(report.truncate_from, Some(0));
        let repaired = repair(&dir, &*vfs::std_fs()).unwrap();
        assert_eq!(repaired.removed.len(), 2);
        // An empty directory is clean: a fresh campaign can start here.
        assert!(scan(&dir, &*vfs::std_fs()).unwrap().is_clean());
        let _ = std_fs_mod::remove_dir_all(&dir);
    }

    #[test]
    fn strays_are_reported_but_never_removed() {
        let dir = tmp_dir("stray");
        journal_with_segments(&dir, 1);
        std_fs_mod::write(dir.join("notes.txt"), "operator notes").unwrap();
        let report = repair(&dir, &*vfs::std_fs()).unwrap();
        assert_eq!(report.stray_files, vec!["notes.txt".to_owned()]);
        assert!(report.removed.is_empty());
        assert!(dir.join("notes.txt").exists());
        assert!(report.is_clean(), "strays alone do not fail the scrub");
        let _ = std_fs_mod::remove_dir_all(&dir);
    }
}
