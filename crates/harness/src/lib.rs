//! Process-level harness for long guardband campaigns.
//!
//! The simulator crate is `#![forbid(unsafe_code)]`, but turning SIGINT
//! and SIGTERM into a cooperative [`CancelToken`] cancellation needs one
//! `unsafe` FFI call to POSIX `signal(2)`. That single call lives here,
//! behind an async-signal-safe handler that does nothing but an atomic
//! store: durable campaign runs observe the token between grid points,
//! flush their journal, and return `SimError::Interrupted` so the CLI
//! can exit with the distinct "interrupted, resumable" status code.

#![warn(missing_docs)]

use p7_sim::CancelToken;
use std::sync::OnceLock;

/// POSIX SIGINT (Ctrl-C).
pub const SIGINT: i32 = 2;
/// POSIX SIGTERM (default `kill`).
pub const SIGTERM: i32 = 15;

/// The token the signal handler trips. Installed once per process: the
/// handler may run at any instant on any thread, so it must never
/// observe a half-updated target.
static TOKEN: OnceLock<CancelToken> = OnceLock::new();

/// Async-signal-safe: `OnceLock::get` is a lock-free read once set, and
/// [`CancelToken::cancel`] is a single atomic store.
extern "C" fn handle_cancel_signal(_signum: i32) {
    if let Some(token) = TOKEN.get() {
        token.cancel();
    }
}

#[cfg(unix)]
extern "C" {
    /// POSIX `signal(2)`. The return value (previous disposition or
    /// `SIG_ERR`) is pointer-sized on every supported target.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Installs SIGINT/SIGTERM handlers that cancel `token` cooperatively.
///
/// Returns `false` (and installs nothing) if handlers were already
/// installed for another token in this process — the first caller wins,
/// matching the one-campaign-per-process CLI model. On non-Unix targets
/// the token is registered but no handler is installed, so runs are
/// simply not signal-cancellable there.
pub fn install_cancel_on_signals(token: &CancelToken) -> bool {
    if TOKEN.set(token.clone()).is_err() {
        return false;
    }
    #[cfg(unix)]
    // SAFETY: `handle_cancel_signal` is async-signal-safe (atomic load +
    // atomic store, no allocation, no locks) and stays valid for the
    // process lifetime; `signal` itself cannot violate memory safety for
    // these two catchable signal numbers.
    unsafe {
        signal(SIGINT, handle_cancel_signal);
        signal(SIGTERM, handle_cancel_signal);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_install_wins_and_wires_the_token() {
        let token = CancelToken::new();
        assert!(install_cancel_on_signals(&token));
        // A second token is refused; the first stays wired.
        let other = CancelToken::new();
        assert!(!install_cancel_on_signals(&other));
        handle_cancel_signal(SIGINT);
        assert!(token.is_cancelled());
        assert!(!other.is_cancelled());
    }
}
