//! Process-level harness for long guardband campaigns.
//!
//! The simulator crate is `#![forbid(unsafe_code)]`, but turning SIGINT
//! and SIGTERM into a cooperative [`CancelToken`] cancellation needs one
//! `unsafe` FFI call to POSIX `signal(2)`. That single call lives here,
//! behind an async-signal-safe handler that does nothing but atomic
//! loads and one atomic store: durable campaign runs observe the token
//! between grid points, flush their journal, and return
//! `SimError::Interrupted` so the CLI can exit with the distinct
//! "interrupted, resumable" status code ([`EXIT_INTERRUPTED`]).
//!
//! Long-running processes can *re-arm*: once `ags serve` begins its
//! graceful drain it registers a second token via
//! [`rearm_cancel_on_signals`], so a second SIGINT/SIGTERM cancels the
//! new token (forcing immediate shutdown) instead of re-tripping the
//! already-cancelled drain token.

#![warn(missing_docs)]

use p7_sim::CancelToken;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// POSIX SIGINT (Ctrl-C).
pub const SIGINT: i32 = 2;
/// POSIX SIGTERM (default `kill`).
pub const SIGTERM: i32 = 15;

/// Exit code of a cooperatively cancelled (SIGINT/SIGTERM) campaign or
/// daemon whose journal was flushed: BSD `EX_TEMPFAIL`, "try again
/// later" — re-run with `--resume` (or restart `ags serve` against the
/// same `--journal`) to continue.
pub const EXIT_INTERRUPTED: u8 = 75;

/// How many signal-token registrations one process supports: the
/// initial [`install_cancel_on_signals`] plus re-arms. A campaign uses
/// one; the daemon uses two (drain, then force); the rest is headroom
/// for supervisors layered on top.
pub const MAX_SIGNAL_REGISTRATIONS: usize = 8;

/// The registered tokens, in registration order. Each slot is written
/// at most once (`OnceLock`), so the handler — which may run at any
/// instant on any thread — can never observe a half-updated target.
static SLOTS: [OnceLock<CancelToken>; MAX_SIGNAL_REGISTRATIONS] =
    [const { OnceLock::new() }; MAX_SIGNAL_REGISTRATIONS];

/// Index of the slot the handler currently trips. `usize::MAX` until
/// the first registration. Stored with `Release` only after the slot's
/// token is set, so an `Acquire` load in the handler sees a fully
/// initialized token.
static ACTIVE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Next free slot; claimed by compare-exchange so concurrent
/// registrations cannot share one.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

/// Async-signal-safe: two atomic loads (`ACTIVE`, then the lock-free
/// read of a set `OnceLock`) and [`CancelToken::cancel`]'s single
/// atomic store.
extern "C" fn handle_cancel_signal(_signum: i32) {
    let active = ACTIVE.load(Ordering::Acquire);
    if let Some(token) = SLOTS.get(active).and_then(OnceLock::get) {
        token.cancel();
    }
}

#[cfg(unix)]
extern "C" {
    /// POSIX `signal(2)`. The return value (previous disposition or
    /// `SIG_ERR`) is pointer-sized on every supported target.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Points SIGINT/SIGTERM at [`handle_cancel_signal`]. Idempotent.
fn install_handlers() {
    #[cfg(unix)]
    // SAFETY: `handle_cancel_signal` is async-signal-safe (atomic loads
    // + atomic store, no allocation, no locks) and stays valid for the
    // process lifetime; `signal` itself cannot violate memory safety
    // for these two catchable signal numbers.
    unsafe {
        signal(SIGINT, handle_cancel_signal);
        signal(SIGTERM, handle_cancel_signal);
    }
}

/// Claims the next free slot for `token` and makes it the handler's
/// target. Returns the claimed index, or `None` when every slot is
/// taken.
fn claim_slot(token: &CancelToken) -> Option<usize> {
    let idx = loop {
        let idx = NEXT_SLOT.load(Ordering::Acquire);
        if idx >= MAX_SIGNAL_REGISTRATIONS {
            return None;
        }
        if NEXT_SLOT
            .compare_exchange(idx, idx + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            break idx;
        }
    };
    // The compare-exchange makes this thread the slot's only owner, so
    // the set cannot fail.
    let _ = SLOTS[idx].set(token.clone());
    ACTIVE.store(idx, Ordering::Release);
    Some(idx)
}

/// Installs SIGINT/SIGTERM handlers that cancel `token` cooperatively.
///
/// Returns `false` (and installs nothing) if handlers were already
/// installed for another token in this process — the first caller wins,
/// matching the one-campaign-per-process CLI model. A long-running
/// process that wants a *successor* token (e.g. a draining daemon
/// arming a force-shutdown token) re-arms with
/// [`rearm_cancel_on_signals`] instead. On non-Unix targets the token
/// is registered but no handler is installed, so runs are simply not
/// signal-cancellable there.
pub fn install_cancel_on_signals(token: &CancelToken) -> bool {
    if NEXT_SLOT.load(Ordering::Acquire) != 0 || claim_slot(token) != Some(0) {
        return false;
    }
    install_handlers();
    true
}

/// Retargets the already-installed SIGINT/SIGTERM handlers at `token`:
/// the next signal cancels `token`, and previously registered tokens
/// are left exactly as they are.
///
/// This is the drain-then-force idiom: `ags serve` installs its drain
/// token at startup; once a first signal begins the graceful drain, the
/// daemon re-arms with a force token so a second signal means
/// "shut down immediately" instead of being swallowed by the
/// already-cancelled drain token. If no handlers were installed yet
/// this acts as the first installation. Returns `false` (and changes
/// nothing) only when all [`MAX_SIGNAL_REGISTRATIONS`] slots are spent.
pub fn rearm_cancel_on_signals(token: &CancelToken) -> bool {
    let Some(idx) = claim_slot(token) else {
        return false;
    };
    if idx == 0 {
        install_handlers();
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test drives the whole registration lifecycle: the slot
    /// statics are process-global, so splitting these assertions into
    /// separate `#[test]`s would race under the parallel test runner.
    #[test]
    fn install_rearm_and_exhaustion_lifecycle() {
        // First install wins and wires the token.
        let drain = CancelToken::new();
        assert!(install_cancel_on_signals(&drain));
        // A second *install* is refused; the first stays wired.
        let other = CancelToken::new();
        assert!(!install_cancel_on_signals(&other));
        handle_cancel_signal(SIGINT);
        assert!(drain.is_cancelled());
        assert!(!other.is_cancelled());

        // Re-arming retargets the handler at the new token without
        // touching earlier registrations.
        let force = CancelToken::new();
        assert!(rearm_cancel_on_signals(&force));
        assert!(!force.is_cancelled());
        handle_cancel_signal(SIGTERM);
        assert!(force.is_cancelled());
        assert!(!other.is_cancelled(), "refused token must stay inert");

        // Slots are finite: after MAX registrations, re-arm refuses and
        // the last armed token keeps receiving signals.
        let mut last = force.clone();
        for _ in 2..MAX_SIGNAL_REGISTRATIONS {
            last = CancelToken::new();
            assert!(rearm_cancel_on_signals(&last));
        }
        let overflow = CancelToken::new();
        assert!(!rearm_cancel_on_signals(&overflow));
        handle_cancel_signal(SIGINT);
        assert!(last.is_cancelled());
        assert!(!overflow.is_cancelled());
    }

    #[test]
    fn exit_code_is_bsd_ex_tempfail() {
        assert_eq!(EXIT_INTERRUPTED, 75);
    }
}
