//! End-to-end check that the real POSIX handler is installed: raise(2)
//! the signal and observe the token trip instead of process death, then
//! re-arm and observe the second signal land on the successor token.

use ags_harness::{install_cancel_on_signals, rearm_cancel_on_signals, SIGINT, SIGTERM};
use p7_sim::CancelToken;

#[cfg(unix)]
extern "C" {
    fn raise(signum: i32) -> i32;
}

#[cfg(unix)]
#[test]
fn raised_signals_trip_the_armed_token_instead_of_killing() {
    let drain = CancelToken::new();
    assert!(install_cancel_on_signals(&drain));
    // SAFETY: raising a signal we just installed a handler for.
    unsafe {
        raise(SIGTERM);
    }
    assert!(drain.is_cancelled());

    // The daemon's drain-then-force idiom: after the first signal the
    // process re-arms, and the next signal cancels the new token.
    let force = CancelToken::new();
    assert!(rearm_cancel_on_signals(&force));
    assert!(!force.is_cancelled());
    // SAFETY: as above — the handler stays installed across re-arms.
    unsafe {
        raise(SIGINT);
    }
    assert!(force.is_cancelled());
}
