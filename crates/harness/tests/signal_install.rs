//! End-to-end check that the real POSIX handler is installed: raise(2)
//! the signal and observe the token trip instead of process death.

use ags_harness::{install_cancel_on_signals, SIGTERM};
use p7_sim::CancelToken;

#[cfg(unix)]
extern "C" {
    fn raise(signum: i32) -> i32;
}

#[cfg(unix)]
#[test]
fn raised_sigterm_trips_the_token_instead_of_killing() {
    let token = CancelToken::new();
    assert!(install_cancel_on_signals(&token));
    // SAFETY: raising a signal we just installed a handler for.
    unsafe {
        raise(SIGTERM);
    }
    assert!(token.is_cancelled());
}
