//! Figure 9 — decomposition of the on-chip voltage drop into loadline, IR
//! drop, typical-case di/dt, and worst-case di/dt, as cores activate.
//!
//! Paper: the passive component (loadline + IR) dominates and scales
//! roughly linearly with active cores; typical-case di/dt noise *shrinks*
//! as staggered cores smooth each other; worst-case droops grow slightly
//! through alignment but occur rarely. Core 0 data shown, as in the paper.

use ags_bench::{compare, engine, f, figure_spec, print_sweep_stats, Table};
use p7_control::GuardbandMode;
use p7_sim::Placement;
use p7_workloads::catalog::DECOMPOSITION_SET;

const CORES: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn main() {
    let spec =
        figure_spec(&DECOMPOSITION_SET, &CORES).with_modes(vec![GuardbandMode::StaticGuardband]);
    let report = engine().run(&spec).expect("fig09 sweep");

    let mut passive_share_8 = Vec::new();
    let mut typical_trend = Vec::new();
    let mut worst_trend = Vec::new();

    for name in DECOMPOSITION_SET {
        let mut table = Table::new(
            &format!("Fig. 9 — {name}: core 0 drop components (mV)"),
            &[
                "active",
                "loadline",
                "IR drop",
                "typical di/dt",
                "worst di/dt",
                "total",
            ],
        );
        for active in CORES {
            let run = report
                .outcome(
                    name,
                    active,
                    Placement::SingleSocket,
                    GuardbandMode::StaticGuardband,
                )
                .expect("static point in grid");
            let d = run.summary.socket0().drop[0];
            table.row(&[
                active.to_string(),
                f(d.loadline.millivolts(), 1),
                f(d.ir_drop.millivolts(), 1),
                f(d.typical_didt.millivolts(), 1),
                f(d.worst_didt.millivolts(), 1),
                f(d.total().millivolts(), 1),
            ]);
            if active == 1 {
                typical_trend.push((d.typical_didt.millivolts(), 0.0));
                worst_trend.push((d.worst_didt.millivolts(), 0.0));
            }
            if active == 8 {
                passive_share_8.push(d.passive().millivolts() / d.total().millivolts() * 100.0);
                typical_trend.last_mut().expect("pushed at active=1").1 =
                    d.typical_didt.millivolts();
                worst_trend.last_mut().expect("pushed at active=1").1 = d.worst_didt.millivolts();
            }
        }
        table.print();
        table.save_csv(&format!("fig09_{name}"));
        println!();
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    compare(
        "passive (loadline+IR) share of total drop at 8 cores",
        "dominant",
        &format!("{} % on average", f(mean(&passive_share_8), 0)),
    );
    let typ_1: Vec<f64> = typical_trend.iter().map(|t| t.0).collect();
    let typ_8: Vec<f64> = typical_trend.iter().map(|t| t.1).collect();
    compare(
        "typical-case di/dt, 1 → 8 cores",
        "shrinks (noise smoothing)",
        &format!("{} → {} mV", f(mean(&typ_1), 1), f(mean(&typ_8), 1)),
    );
    let worst_1: Vec<f64> = worst_trend.iter().map(|t| t.0).collect();
    let worst_8: Vec<f64> = worst_trend.iter().map(|t| t.1).collect();
    compare(
        "worst-case di/dt, 1 → 8 cores",
        "grows slightly (alignment)",
        &format!("{} → {} mV", f(mean(&worst_1), 1), f(mean(&worst_8), 1)),
    );
    print_sweep_stats(&report.stats);
}
