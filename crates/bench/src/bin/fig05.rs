//! Figure 5 — power and frequency improvement versus active cores for the
//! five core-scaling benchmarks; workload variation magnifies with load.
//!
//! Paper: at one core power improvements cluster at 10.7–14.8 %; the
//! average falls 13.3 % → 10 % → 6.4 % at 1/2/8 cores. radix barely
//! degrades (15 % → 12 %) while swaptions collapses (13 % → 3 %). In
//! frequency mode radix and ocean_cp hold ~9 % while lu_cb, swaptions and
//! raytrace fall from ~10 % to ~4 %.

use ags_bench::{compare, engine, f, figure_spec, mean, print_sweep_stats, Table};
use p7_control::GuardbandMode;
use p7_sim::Placement;
use p7_workloads::catalog::CORE_SCALING_SET;
use std::collections::HashMap;

const CORES: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn main() {
    let spec = figure_spec(&CORE_SCALING_SET, &CORES);
    let report = engine().run(&spec).expect("fig05 sweep");

    let mut power: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut freq: HashMap<&str, Vec<f64>> = HashMap::new();
    for name in CORE_SCALING_SET {
        for cores in CORES {
            let place = Placement::SingleSocket;
            power.entry(name).or_default().push(
                report
                    .power_saving_percent(name, cores, place, GuardbandMode::Undervolt)
                    .expect("undervolt point in grid"),
            );
            freq.entry(name).or_default().push(
                report
                    .frequency_boost_percent(name, cores, place, GuardbandMode::Overclock)
                    .expect("overclock point in grid"),
            );
        }
    }

    for (title, csv, data) in [
        (
            "Fig. 5a — power improvement % (undervolt mode)",
            "fig05a",
            &power,
        ),
        (
            "Fig. 5b — frequency improvement % (overclock mode)",
            "fig05b",
            &freq,
        ),
    ] {
        let mut headers = vec!["cores"];
        headers.extend(CORE_SCALING_SET);
        let mut table = Table::new(title, &headers);
        for cores in CORES {
            let mut row = vec![cores.to_string()];
            for name in CORE_SCALING_SET {
                row.push(f(data[name][cores - 1], 1));
            }
            table.row(&row);
        }
        table.print();
        table.save_csv(csv);
        println!();
    }

    let at = |data: &HashMap<&str, Vec<f64>>, cores: usize| -> Vec<f64> {
        CORE_SCALING_SET
            .iter()
            .map(|n| data[n][cores - 1])
            .collect()
    };
    compare(
        "avg power improvement at 1 / 2 / 8 cores",
        "13.3 / 10 / 6.4 %",
        &format!(
            "{} / {} / {} %",
            f(mean(&at(&power, 1)), 1),
            f(mean(&at(&power, 2)), 1),
            f(mean(&at(&power, 8)), 1)
        ),
    );
    compare(
        "radix power improvement 1 → 8 cores",
        "15 → 12 %",
        &format!(
            "{} → {} %",
            f(power["radix"][0], 1),
            f(power["radix"][7], 1)
        ),
    );
    compare(
        "swaptions power improvement 1 → 8 cores",
        "13 → 3 %",
        &format!(
            "{} → {} %",
            f(power["swaptions"][0], 1),
            f(power["swaptions"][7], 1)
        ),
    );
    compare(
        "radix / ocean_cp frequency at 8 cores",
        "~9 % (nearly flat)",
        &format!(
            "{} / {} %",
            f(freq["radix"][7], 1),
            f(freq["ocean_cp"][7], 1)
        ),
    );
    compare(
        "lu_cb / swaptions / raytrace frequency 1 → 8",
        "10 → 4 %",
        &format!(
            "{} → {} %",
            f(
                mean(&[freq["lu_cb"][0], freq["swaptions"][0], freq["raytrace"][0]]),
                1
            ),
            f(
                mean(&[freq["lu_cb"][7], freq["swaptions"][7], freq["raytrace"][7]]),
                1
            )
        ),
    );
    print_sweep_stats(&report.stats);
}
