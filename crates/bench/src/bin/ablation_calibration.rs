//! Ablation — sweep the residual guardband (CPM nondeterminism allowance).
//!
//! POWER7+ keeps a residual slice of the static guardband to cover CPM
//! calibration error and control nondeterminism (Sec. 2.1). This sweep
//! shows the efficiency cost of that insurance: every extra 10 mV of
//! residual directly shrinks the undervolt, and a stuck-low CPM (the fault
//! the residual exists for) silently costs a whole rail its benefit.

use ags_bench::{compare, f, Table, FIGURE_SEED};
use p7_control::GuardbandMode;
use p7_sensors::CpmReading;
use p7_sim::{Assignment, Experiment, ServerConfig, Simulation};
use p7_types::{CoreId, CpmId, SocketId, Volts};
use p7_workloads::{Catalog, ExecutionModel};

fn main() {
    let catalog = Catalog::power7plus();
    let raytrace = catalog.get("raytrace").expect("raytrace in catalog");

    let mut table = Table::new(
        "Ablation — residual guardband sweep (raytrace, 1 thread)",
        &["residual mV", "undervolt mV", "saving %"],
    );

    let mut savings = Vec::new();
    for residual_mv in [10.0, 20.0, 30.0, 45.0, 60.0] {
        let mut cfg = ServerConfig::power7plus(FIGURE_SEED);
        cfg.policy.residual_guardband = Volts::from_millivolts(residual_mv);
        let exp = Experiment::with_config(cfg, ExecutionModel::power7plus()).with_ticks(30, 15);
        let a = Assignment::single_socket(raytrace, 1).expect("valid assignment");
        let st = exp
            .run(&a, GuardbandMode::StaticGuardband)
            .expect("static run");
        let uv = exp
            .run(&a, GuardbandMode::Undervolt)
            .expect("undervolt run");
        let saving = (st.chip_power().0 - uv.chip_power().0) / st.chip_power().0 * 100.0;
        savings.push(saving);
        table.row(&[
            f(residual_mv, 0),
            f(uv.summary.socket0().undervolt.millivolts(), 1),
            f(saving, 1),
        ]);
    }
    table.print();
    table.save_csv("ablation_calibration");
    println!();

    // A CPM stuck at its lowest tap makes the DPLL believe margin is gone:
    // the firmware holds the voltage up and the benefit evaporates —
    // safely (the chip never undervolts on a lying-low sensor).
    let cfg = ServerConfig::power7plus(FIGURE_SEED);
    let floor_check = {
        let a = Assignment::single_socket(raytrace, 1).expect("valid assignment");
        let mut sim = Simulation::new(cfg.clone(), a, GuardbandMode::Undervolt)
            .expect("simulation construction");
        let s0 = SocketId::new(0).expect("socket 0");
        let cpm = CpmId::new(CoreId::new(0).expect("core 0"), 0).expect("cpm 0");
        sim.inject_cpm_fault(s0, cpm, CpmReading::new(0));
        sim.run(30, 15)
    };
    compare(
        "saving falls as residual guardband grows",
        "monotone decrease",
        &format!("{} → {} %", f(savings[0], 1), f(savings[4], 1)),
    );
    compare(
        "stuck-low CPM keeps the rail safely high",
        "no unsafe undervolt",
        &format!(
            "undervolt {} mV with the fault",
            f(floor_check.socket0().undervolt.millivolts(), 1)
        ),
    );
}
