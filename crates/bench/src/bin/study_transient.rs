//! Study — transient behaviour of the undervolting firmware.
//!
//! The paper's measurements are steady-state (32 ms AMESTER windows); this
//! study uses the simulator's time-series recorder to answer two questions
//! the hardware loop design raises:
//!
//! 1. how many 32 ms windows does the firmware need to walk the rail from
//!    nominal down to its equilibrium (it slews ≤25 mV per window), and
//! 2. how quickly does it retreat when the load steps up mid-run (we
//!    emulate the step by switching the assignment between two runs and
//!    splicing the histories).
//!
//! The two time-series runs are independent, so they fan out on the sweep
//! engine's worker primitive.

use ags_bench::{compare, f, jobs_from_args, Table, FIGURE_SEED};
use p7_control::GuardbandMode;
use p7_sim::sweep::run_indexed;
use p7_sim::{Assignment, ServerConfig, Simulation};
use p7_types::Volts;
use p7_workloads::Catalog;

const THREAD_COUNTS: [usize; 2] = [2, 8];

fn main() {
    let catalog = Catalog::power7plus();
    let raytrace = catalog.get("raytrace").expect("raytrace in catalog");

    let mut runs = run_indexed(jobs_from_args(), THREAD_COUNTS.len(), |i| {
        let mut sim = Simulation::new(
            ServerConfig::power7plus(FIGURE_SEED),
            Assignment::single_socket(raytrace, THREAD_COUNTS[i]).expect("valid assignment"),
            GuardbandMode::Undervolt,
        )
        .expect("simulation");
        sim.run_with_history(30, 0)
    });
    let (heavy, heavy_history) = runs.pop().expect("heavy run present");
    let (_, history) = runs.pop().expect("light run present");

    // ---- 1. walk-down from nominal -------------------------------------
    let mut table = Table::new(
        "Undervolt walk-down (raytrace, 2 threads): rail set point per window",
        &["window", "set point mV", "min core mV", "power W"],
    );
    for r in history.records().iter().take(12) {
        let s = &r.sockets[0];
        table.row(&[
            r.tick.to_string(),
            f(s.set_point.millivolts(), 1),
            f(s.min_core_voltage.millivolts(), 1),
            f(s.power.0, 1),
        ]);
    }
    table.print();
    table.save_csv("study_transient_walkdown");
    println!();

    let settled = history
        .settling_window(0, Volts::from_millivolts(2.0))
        .expect("history is non-empty");
    compare(
        "windows to settle the undervolt",
        "a handful (25 mV slew per 32 ms window)",
        &format!("{settled} windows ({} ms)", settled * 32),
    );

    // ---- 2. load step: 2 busy cores → 8 busy cores ----------------------
    // The rail must rise when the load grows; starting an 8-thread run
    // from the 2-thread equilibrium voltage is not directly supported, so
    // we compare the two equilibria and the retreat distance the firmware
    // must cover.
    let light_equilibrium = history.records().last().expect("non-empty").sockets[0].set_point;
    let heavy_equilibrium = heavy.socket0().avg_set_point;
    let retreat = (heavy_equilibrium - light_equilibrium).millivolts();
    let heavy_settled = heavy_history
        .settling_window(0, Volts::from_millivolts(2.0))
        .expect("history is non-empty");

    compare(
        "equilibrium gap, 2 → 8 busy cores",
        "rail must retreat upward under load",
        &format!("{} mV", f(retreat, 1)),
    );
    compare(
        "windows to settle at full load",
        "similar (same slew limit)",
        &format!("{heavy_settled} windows"),
    );
    compare(
        "firmware never overshoots below the floor",
        "guaranteed by clamping",
        &format!(
            "min set point {} mV",
            f(
                heavy_history
                    .records()
                    .iter()
                    .map(|r| r.sockets[0].set_point.millivolts())
                    .fold(f64::MAX, f64::min),
                1
            )
        ),
    );
}
