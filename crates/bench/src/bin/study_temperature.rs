//! Study — temperature sensitivity.
//!
//! Sec. 4.1's robustness check: "chip temperature varies between 27°C at
//! the lowest frequency to 38°C at the highest. Internal benchmark runs
//! show such temperature variation does not have significant influence
//! over CPM readings". Our model couples temperature only through leakage
//! (a second-order effect at server temperatures); this study sweeps the
//! server's ambient temperature and shows the adaptive-guardbanding
//! observables barely move — confirming the paper was right to treat its
//! measurements as temperature-insensitive.

use ags_bench::{compare, f, jobs_from_args, Table, FIGURE_SEED};
use p7_control::GuardbandMode;
use p7_power::ThermalModel;
use p7_sim::sweep::run_indexed;
use p7_sim::{Assignment, CachedExperiment, Experiment, ServerConfig};
use p7_types::{Celsius, Watts};
use p7_workloads::{Catalog, ExecutionModel};

const AMBIENTS: [f64; 4] = [15.0, 22.0, 30.0, 40.0];

fn main() {
    let catalog = Catalog::power7plus();
    let raytrace = catalog.get("raytrace").expect("raytrace in catalog");

    // The die-temperature range the default thermal model visits.
    let model = ThermalModel::power7plus();
    let cool = model.steady_state(Watts(60.0));
    let hot = model.steady_state(Watts(140.0));

    let mut table = Table::new(
        "Ambient sweep (raytrace, 4 threads, undervolt mode)",
        &[
            "ambient °C",
            "static W",
            "undervolt mV",
            "adaptive W",
            "saving %",
        ],
    );

    let a = Assignment::single_socket(raytrace, 4).expect("valid assignment");
    let runs = run_indexed(jobs_from_args(), AMBIENTS.len(), |i| {
        let mut cfg = ServerConfig::power7plus(FIGURE_SEED);
        cfg.ambient = Celsius(AMBIENTS[i]);
        let exp = CachedExperiment::new(
            Experiment::with_config(cfg, ExecutionModel::power7plus()).with_ticks(30, 15),
        );
        let st = exp
            .run(&a, GuardbandMode::StaticGuardband)
            .expect("static run");
        let uv = exp
            .run(&a, GuardbandMode::Undervolt)
            .expect("undervolt run");
        (st, uv)
    });

    let mut savings = Vec::new();
    for (ambient, (st, uv)) in AMBIENTS.iter().zip(&runs) {
        let saving = (st.chip_power().0 - uv.chip_power().0) / st.chip_power().0 * 100.0;
        savings.push(saving);
        table.row(&[
            f(*ambient, 0),
            f(st.chip_power().0, 1),
            f(uv.summary.socket0().undervolt.millivolts(), 1),
            f(uv.chip_power().0, 1),
            f(saving, 1),
        ]);
    }

    table.print();
    table.save_csv("study_temperature");
    println!();
    compare(
        "die temperature range across loads",
        "27–38 °C (paper's measured band)",
        &format!("{}–{} °C at 60–140 W", f(cool.0, 0), f(hot.0, 0)),
    );
    let spread = savings.iter().cloned().fold(f64::MIN, f64::max)
        - savings.iter().cloned().fold(f64::MAX, f64::min);
    compare(
        "temperature influence on the AG benefit",
        "not significant (Sec. 4.1)",
        &format!(
            "{} points of saving across a 25 °C ambient sweep",
            f(spread, 2)
        ),
    );
}
