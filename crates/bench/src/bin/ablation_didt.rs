//! Ablation — di/dt noise on vs off.
//!
//! Sec. 4.3 argues that di/dt noise, although it consumes a sizeable slice
//! of the guardband, is *not* what erodes adaptive guardbanding's benefit
//! at scale: the DPLL rides the rare droops out, and typical ripple even
//! shrinks with core count. Passive drop (loadline + IR) is the culprit.
//! This ablation disables the di/dt model entirely and shows the
//! diminishing-benefit trend survives almost unchanged.

use ags_bench::{compare, f, Table, FIGURE_SEED};
use p7_control::GuardbandMode;
use p7_pdn::DidtConfig;
use p7_sim::{Assignment, Experiment, ServerConfig};
use p7_workloads::{Catalog, ExecutionModel};

fn saving_curve(config: ServerConfig) -> Vec<f64> {
    let exp = Experiment::with_config(config, ExecutionModel::power7plus()).with_ticks(30, 15);
    let catalog = Catalog::power7plus();
    let raytrace = catalog.get("raytrace").expect("raytrace in catalog");
    (1..=8)
        .map(|cores| {
            let a = Assignment::single_socket(raytrace, cores).expect("valid assignment");
            let st = exp
                .run(&a, GuardbandMode::StaticGuardband)
                .expect("static run");
            let uv = exp
                .run(&a, GuardbandMode::Undervolt)
                .expect("undervolt run");
            (st.chip_power().0 - uv.chip_power().0) / st.chip_power().0 * 100.0
        })
        .collect()
}

fn main() {
    let with_noise = saving_curve(ServerConfig::power7plus(FIGURE_SEED));
    let mut quiet_cfg = ServerConfig::power7plus(FIGURE_SEED);
    quiet_cfg.didt = DidtConfig::disabled();
    let without_noise = saving_curve(quiet_cfg);

    let mut table = Table::new(
        "Ablation — raytrace undervolt saving % with and without di/dt noise",
        &["cores", "with di/dt", "without di/dt", "delta"],
    );
    for cores in 1..=8usize {
        table.row(&[
            cores.to_string(),
            f(with_noise[cores - 1], 1),
            f(without_noise[cores - 1], 1),
            f(without_noise[cores - 1] - with_noise[cores - 1], 1),
        ]);
    }
    table.print();
    table.save_csv("ablation_didt");
    println!();

    let droop_with = with_noise[0] - with_noise[7];
    let droop_without = without_noise[0] - without_noise[7];
    compare(
        "benefit erosion 1→8 cores, with di/dt",
        "large (passive-drop driven)",
        &format!("{} points", f(droop_with, 1)),
    );
    compare(
        "benefit erosion 1→8 cores, without di/dt",
        "still large — noise is not the cause",
        &format!("{} points", f(droop_without, 1)),
    );
    compare(
        "share of the erosion explained by di/dt",
        "small (Sec. 4.3 conclusion)",
        &format!(
            "{} %",
            f((1.0 - droop_without / droop_with).abs() * 100.0, 0)
        ),
    );
}
