//! Figure 15 — colocation changes the critical application's frequency.
//!
//! coremark (core-contained, so interference is purely through the shared
//! voltage margin) is colocated with a varying number of lu_cb or mcf
//! threads. Paper: adding lu_cb threads drags coremark's clock down by
//! ~85 MHz at <1,7>, while mcf threads *raise* it; the spread between the
//! two co-runners exceeds 100 MHz.

use ags_bench::{compare, experiment, f, Table};
use p7_control::GuardbandMode;
use p7_sim::Assignment;
use p7_workloads::Catalog;

fn main() {
    let exp = experiment();
    let catalog = Catalog::power7plus();
    let coremark = catalog.get("coremark").expect("coremark in catalog");
    let lu_cb = catalog.get("lu_cb").expect("lu_cb in catalog");
    let mcf = catalog.get("mcf").expect("mcf in catalog");

    let mut table = Table::new(
        "Fig. 15 — coremark frequency vs workload combination",
        &["mix <#coremark,#other>", "co-runner", "coremark MHz"],
    );

    // coremark-only reference: all eight threads are coremark.
    let only = exp
        .run(
            &Assignment::single_socket(coremark, 8).expect("valid assignment"),
            GuardbandMode::Overclock,
        )
        .expect("coremark-only run");
    let f_only = only.summary.sockets[0].avg_core_freq[0].0;

    let freq_with = |other: &p7_workloads::WorkloadProfile, n: usize| -> f64 {
        let a = Assignment::colocated(coremark, other, n).expect("valid colocation");
        let o = exp
            .run(&a, GuardbandMode::Overclock)
            .expect("colocated run");
        o.summary.sockets[0].avg_core_freq[0].0
    };

    // Sweep from lu_cb-heavy mixes through coremark-only to mcf-heavy,
    // mirroring the paper's x-axis.
    let mut f_lu17 = 0.0;
    let mut f_mcf17 = 0.0;
    for n_other in (1..=7).rev() {
        let freq = freq_with(lu_cb, n_other);
        if n_other == 7 {
            f_lu17 = freq;
        }
        table.row(&[
            format!("<{},{}>", 8 - n_other, n_other),
            "lu_cb".to_owned(),
            f(freq, 0),
        ]);
    }
    table.row(&[
        "<8,0>".to_owned(),
        "(coremark only)".to_owned(),
        f(f_only, 0),
    ]);
    for n_other in 1..=7 {
        let freq = freq_with(mcf, n_other);
        if n_other == 7 {
            f_mcf17 = freq;
        }
        table.row(&[
            format!("<{},{}>", 8 - n_other, n_other),
            "mcf".to_owned(),
            f(freq, 0),
        ]);
    }

    table.print();
    table.save_csv("fig15");
    println!();
    compare(
        "coremark-only chip frequency",
        "4517 MHz",
        &format!("{} MHz", f(f_only, 0)),
    );
    compare(
        "frequency loss with 7 lu_cb co-runners",
        "≈ −85 MHz (4433 MHz)",
        &format!("{} MHz ({} MHz)", f(f_lu17 - f_only, 0), f(f_lu17, 0)),
    );
    compare(
        "mcf co-runners raise coremark's frequency",
        "positive shift",
        &format!("{} MHz", f(f_mcf17 - f_only, 0)),
    );
    compare(
        "lu_cb-heavy vs mcf-heavy spread",
        "> 100 MHz",
        &format!("{} MHz", f(f_mcf17 - f_lu17, 0)),
    );
}
