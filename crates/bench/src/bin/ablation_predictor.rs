//! Ablation — frequency-predictor design choices.
//!
//! The paper picks a MIPS-based linear predictor because MIPS is readable
//! from existing performance counters and tracks power to first order
//! (Sec. 5.2.1). This ablation compares it against (a) a power-based
//! linear predictor — more accurate but needing power telemetry — and
//! (b) a per-workload lookup oracle — exact on seen workloads, useless on
//! unseen ones (evaluated leave-one-out).

use ags_bench::{compare, f, mean, sweep_experiment, Table};
use ags_core::MipsFrequencyPredictor;
use p7_control::GuardbandMode;
use p7_sim::Assignment;
use p7_workloads::Catalog;

fn main() {
    let exp = sweep_experiment();
    let catalog = Catalog::power7plus();

    // Gather one observation per workload: chip MIPS, chip power, freq.
    let mut mips = Vec::new();
    let mut power = Vec::new();
    let mut freq = Vec::new();
    for w in catalog.scatter_set() {
        let a = Assignment::single_socket(w, 8).expect("valid assignment");
        let o = exp.run(&a, GuardbandMode::Overclock).expect("training run");
        let ratio = o.summary.freq_ratio(exp.config().target_frequency);
        mips.push(w.chip_mips(8, ratio));
        power.push(o.chip_power().0);
        freq.push(o.summary.avg_running_freq.0);
    }
    let n = freq.len();

    // (1) MIPS-based linear model (the paper's choice).
    let mips_data: Vec<(f64, f64)> = mips.iter().copied().zip(freq.iter().copied()).collect();
    let mips_model = MipsFrequencyPredictor::fit(&mips_data).expect("mips fit");

    // (2) Power-based linear model (same machinery, different counter).
    let power_data: Vec<(f64, f64)> = power.iter().copied().zip(freq.iter().copied()).collect();
    let power_model = MipsFrequencyPredictor::fit(&power_data).expect("power fit");

    // (3) Leave-one-out lookup "oracle": predict each workload from the
    // mean frequency of every *other* workload (what a lookup table does
    // when it has never seen the job).
    let lookup_rmse = {
        let total: f64 = freq.iter().sum();
        let sse: f64 = freq
            .iter()
            .map(|&fi| {
                let others_mean = (total - fi) / (n as f64 - 1.0);
                (fi - others_mean).powi(2)
            })
            .sum();
        (sse / n as f64).sqrt() / mean(&freq) * 100.0
    };

    let mut table = Table::new(
        "Ablation — predictor accuracy (RMSE % of mean frequency)",
        &["predictor", "input counter", "RMSE %", "deployable?"],
    );
    table.row(&[
        "linear (paper)".into(),
        "chip MIPS".into(),
        f(mips_model.rmse_percent(), 2),
        "yes: existing counters".into(),
    ]);
    table.row(&[
        "linear".into(),
        "chip power".into(),
        f(power_model.rmse_percent(), 2),
        "needs power telemetry".into(),
    ]);
    table.row(&[
        "lookup, unseen job".into(),
        "workload identity".into(),
        f(lookup_rmse, 2),
        "fails on new workloads".into(),
    ]);
    table.print();
    table.save_csv("ablation_predictor");
    println!();

    compare(
        "MIPS predictor RMSE",
        "0.3 % (cheap and sufficient)",
        &format!("{} %", f(mips_model.rmse_percent(), 2)),
    );
    compare(
        "power-based predictor RMSE",
        "slightly better (power is the true cause)",
        &format!("{} %", f(power_model.rmse_percent(), 2)),
    );
    compare(
        "lookup table on unseen workloads",
        "much worse — motivates a parametric model",
        &format!("{} %", f(lookup_rmse, 2)),
    );
}
