//! Figure 14 — loadline borrowing's power and energy improvement at eight
//! active cores across all 42 workloads (PARSEC + SPLASH-2 + SPECrate).
//!
//! Paper: 6.2 % average power and 7.7 % average energy reduction.
//! Communication-heavy codes on the left (lu_ncb, radiosity) lose >20 %
//! performance when split and end up with *negative* energy improvement;
//! bandwidth-starved codes on the right (radix, zeusmp, lbm, fft,
//! GemsFDTD) gain 50–171 % energy from the second memory subsystem.

use ags_bench::{compare, f, mean, sweep_experiment, Table};
use ags_core::LoadlineBorrowing;
use p7_workloads::catalog::FIG14_SET;
use p7_workloads::Catalog;

fn main() {
    let exp = sweep_experiment();
    let catalog = Catalog::power7plus();
    let lb = LoadlineBorrowing::new(exp);

    let mut table = Table::new(
        "Fig. 14 — loadline borrowing at 8 threads (paper's x-axis order)",
        &[
            "workload",
            "baseline W",
            "borrow W",
            "power save %",
            "time change %",
            "energy gain %",
        ],
    );

    let mut power_savings = Vec::new();
    let mut energy_gains = Vec::new();
    let mut by_name = std::collections::HashMap::new();
    for name in FIG14_SET {
        let w = catalog.get(name).expect("fig14 benchmark");
        let eval = lb.evaluate(w, 8).expect("borrowing evaluation");
        table.row(&[
            name.to_owned(),
            f(eval.consolidated.total_power().0, 1),
            f(eval.borrowed.total_power().0, 1),
            f(eval.power_saving_percent, 1),
            f(eval.time_change_percent, 1),
            f(eval.energy_improvement_percent, 1),
        ]);
        power_savings.push(eval.power_saving_percent);
        energy_gains.push(eval.energy_improvement_percent);
        by_name.insert(name, eval.energy_improvement_percent);
    }

    table.print();
    table.save_csv("fig14");
    println!();

    compare(
        "average power reduction",
        "6.2 %",
        &format!("{} %", f(mean(&power_savings), 1)),
    );
    compare(
        "average energy reduction",
        "7.7 %",
        &format!("{} %", f(mean(&energy_gains), 1)),
    );
    compare(
        "lu_ncb / radiosity energy (comm-heavy, left extreme)",
        "negative (perf loss >20 %)",
        &format!(
            "{} / {} %",
            f(by_name["lu_ncb"], 1),
            f(by_name["radiosity"], 1)
        ),
    );
    let right: Vec<f64> = ["radix", "zeusmp", "lbm", "fft", "GemsFDTD"]
        .iter()
        .map(|n| by_name[n])
        .collect();
    compare(
        "radix/zeusmp/lbm/fft/GemsFDTD energy (bandwidth-bound)",
        "50–171 %",
        &format!(
            "{}–{} %",
            f(right.iter().cloned().fold(f64::MAX, f64::min), 0),
            f(right.iter().cloned().fold(f64::MIN, f64::max), 0)
        ),
    );
}
