//! Ablation — sweep the VRM loadline resistance.
//!
//! The loadline is the root cause DESIGN.md calls out: a stiffer rail
//! (smaller R) keeps adaptive guardbanding efficient at scale and shrinks
//! loadline borrowing's win. Softer rails grow the win — until the rail is
//! so soft that the undervolt budget saturates at full load under *either*
//! schedule, at which point borrowing turns counterproductive (two live
//! rails at high voltage beat one live rail plus one parked rail). The
//! sweep exposes both regimes.

use ags_bench::{compare, f, Table, FIGURE_SEED};
use ags_core::LoadlineBorrowing;
use p7_control::GuardbandMode;
use p7_sim::{Assignment, Experiment, ServerConfig};
use p7_types::Ohms;
use p7_workloads::{Catalog, ExecutionModel};

fn main() {
    let catalog = Catalog::power7plus();
    let raytrace = catalog.get("raytrace").expect("raytrace in catalog");
    let base = ServerConfig::power7plus(FIGURE_SEED).pdn.vrm_loadline.0;

    let mut table = Table::new(
        "Ablation — VRM loadline sweep (raytrace, 8 threads)",
        &[
            "loadline mΩ",
            "AG saving 1-core %",
            "AG saving 8-core %",
            "borrowing saving %",
        ],
    );

    let mut stiff_vs_soft = Vec::new();
    for scale in [0.5, 1.0, 2.0, 3.0] {
        let mut cfg = ServerConfig::power7plus(FIGURE_SEED);
        cfg.pdn.vrm_loadline = Ohms(base * scale);
        // The firmware's transient allowance tracks the physical rail.
        cfg.policy.transient_reserve_ohms *= scale;
        let exp = Experiment::with_config(cfg, ExecutionModel::power7plus()).with_ticks(30, 15);

        let saving = |cores: usize| {
            let a = Assignment::single_socket(raytrace, cores).expect("valid assignment");
            let st = exp
                .run(&a, GuardbandMode::StaticGuardband)
                .expect("static run");
            let uv = exp
                .run(&a, GuardbandMode::Undervolt)
                .expect("undervolt run");
            (st.chip_power().0 - uv.chip_power().0) / st.chip_power().0 * 100.0
        };
        let s1 = saving(1);
        let s8 = saving(8);
        let lb = LoadlineBorrowing::new(exp);
        let borrow = lb
            .evaluate(raytrace, 8)
            .expect("borrowing evaluation")
            .power_saving_percent;
        stiff_vs_soft.push(borrow);
        table.row(&[
            f(base * scale * 1000.0, 2),
            f(s1, 1),
            f(s8, 1),
            f(borrow, 1),
        ]);
    }

    table.print();
    table.save_csv("ablation_loadline");
    println!();
    compare(
        "borrowing's win vs rail softness",
        "grows with R, then collapses when the budget saturates",
        &format!(
            "{} / {} / {} / {} % at 0.5× / 1× / 2× / 3× R",
            f(stiff_vs_soft[0], 1),
            f(stiff_vs_soft[1], 1),
            f(stiff_vs_soft[2], 1),
            f(stiff_vs_soft[3], 1)
        ),
    );
}
