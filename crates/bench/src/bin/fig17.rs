//! Figure 17 — adaptive mapping guarantees WebSearch's QoS by swapping
//! malicious co-runners.
//!
//! WebSearch runs on one core with seven co-runner threads built from
//! issue-throttled coremark (light/medium/heavy ≈ 13k/28k/70k chip MIPS).
//! Paper: blindly colocating with the heavy co-runner violates the 0.5 s
//! p90 target more than 25 % of the time; the MIPS-predictor-guided swap
//! to the light co-runner cuts violations below 7 % (medium lands ~15 %).

use ags_bench::{compare, f, sweep_experiment, Table, FIGURE_SEED};
use ags_core::{AdaptiveMappingScheduler, JobSpec, MipsFrequencyPredictor, QosSpec};
use p7_control::GuardbandMode;
use p7_sim::Assignment;
use p7_types::Seconds;
use p7_workloads::{co_runner, Catalog, CoRunnerClass, WebSearch};

fn main() {
    let exp = sweep_experiment();
    let catalog = Catalog::power7plus();
    let websearch_profile = catalog.get("websearch").expect("websearch in catalog");
    let service = WebSearch::power7plus();
    let qos = QosSpec::websearch();

    // ---- Static CDF data: violation rate per co-runner class -----------
    let mut table = Table::new(
        "Fig. 17 — WebSearch p90 vs co-runner class (0.5 s QoS target)",
        &[
            "co-runner",
            "chip MIPS",
            "freq MHz",
            "violation %",
            "p90 median s",
        ],
    );
    let mut rates = std::collections::HashMap::new();
    for class in CoRunnerClass::all() {
        let runner = co_runner(class);
        let a = Assignment::colocated(websearch_profile, &runner, 7).expect("valid colocation");
        let o = exp
            .run(&a, GuardbandMode::Overclock)
            .expect("colocated run");
        let freq = o.summary.sockets[0].avg_core_freq[0];
        let mut p90s = service.p90_windows(freq, 300, FIGURE_SEED);
        p90s.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        let violation = p90s.iter().filter(|&&p| p > qos.p90_target.0).count() as f64
            / p90s.len().max(1) as f64
            * 100.0;
        rates.insert(class, violation);
        table.row(&[
            class.to_string(),
            f(runner.chip_mips(7, 1.0), 0),
            f(freq.0, 0),
            f(violation, 1),
            f(p90s[p90s.len() / 2], 3),
        ]);
    }
    table.print();
    table.save_csv("fig17_classes");
    println!();

    // ---- The end-to-end scheduler run: start blind on heavy ------------
    let predictor = {
        let mut data = Vec::new();
        for w in catalog.scatter_set() {
            let (mips, freq) = ags_core::predictor::measure_point(&exp, w).expect("training run");
            data.push((mips, freq.0));
        }
        MipsFrequencyPredictor::fit(&data).expect("trained predictor")
    };
    let job = JobSpec::critical("websearch", websearch_profile.clone(), qos);
    let pool = vec![
        co_runner(CoRunnerClass::Light),
        co_runner(CoRunnerClass::Medium),
        co_runner(CoRunnerClass::Heavy),
    ];
    let mut scheduler = AdaptiveMappingScheduler::new(
        exp.clone(),
        predictor,
        job,
        service.clone(),
        pool,
        2, // start blindly colocated with heavy
        FIGURE_SEED,
    )
    .expect("scheduler construction");
    scheduler.set_windows_per_quantum(60);

    let mut sched_table = Table::new(
        "Fig. 17 — adaptive mapping quanta (initial co-runner: heavy)",
        &["quantum", "co-runner", "freq MHz", "violation %", "action"],
    );
    let mut before = None;
    let mut after = Vec::new();
    for _ in 0..8 {
        let report = scheduler.run_quantum().expect("quantum");
        if before.is_none() {
            before = Some(report.violation_rate * 100.0);
        }
        if report.quantum >= 4 {
            after.push(report.violation_rate * 100.0);
        }
        sched_table.row(&[
            report.quantum.to_string(),
            report.co_runner.clone(),
            f(report.chip_frequency.0, 0),
            f(report.violation_rate * 100.0, 1),
            report
                .swapped_to
                .clone()
                .map_or_else(|| "-".to_owned(), |to| format!("swap → {to}")),
        ]);
    }
    sched_table.print();
    sched_table.save_csv("fig17_schedule");
    println!();

    // Tail-latency improvement of the final mapping vs the initial one.
    let tail = |class: CoRunnerClass| {
        let runner = co_runner(class);
        let a = Assignment::colocated(websearch_profile, &runner, 7).expect("valid colocation");
        let o = exp.run(&a, GuardbandMode::Overclock).expect("run");
        service
            .latency_stats(o.summary.sockets[0].avg_core_freq[0], Seconds(200.0), 9)
            .p90
            .0
    };
    let tail_heavy = tail(CoRunnerClass::Heavy);
    let final_class = CoRunnerClass::all()
        .into_iter()
        .find(|c| co_runner(*c).name() == scheduler.current_co_runner().name())
        .unwrap_or(CoRunnerClass::Heavy);
    let tail_final = tail(final_class);

    compare(
        "violation rate, heavy co-runner",
        "> 25 %",
        &format!("{} %", f(rates[&CoRunnerClass::Heavy], 1)),
    );
    compare(
        "violation rate, medium co-runner",
        "≈ 15 %",
        &format!("{} %", f(rates[&CoRunnerClass::Medium], 1)),
    );
    compare(
        "violation rate, light co-runner",
        "< 7 %",
        &format!("{} %", f(rates[&CoRunnerClass::Light], 1)),
    );
    compare(
        "scheduler converges away from heavy",
        "swaps to light",
        scheduler.current_co_runner().name(),
    );
    compare(
        "steady-state violation after adaptation",
        "< 7 %",
        &format!("{} %", f(ags_bench::mean(&after), 1)),
    );
    compare(
        "query p90 tail improvement vs heavy colocation",
        "5.2 %",
        &format!("{} %", f((tail_heavy - tail_final) / tail_heavy * 100.0, 1)),
    );
}
