//! Study — where the static guardband goes (the paper's Fig. 8, with
//! numbers).
//!
//! The 173 mV static guardband is a budget. At any operating point it is
//! spent on: the passive drop (loadline + IR), the typical di/dt ripple,
//! the firmware's worst-case reserve (droops / load transients), the
//! residual guardband for CPM nondeterminism — and whatever is left is
//! what undervolting *reclaims*. This study prints the ledger as load
//! grows, making the efficiency collapse of Figs. 3–5 arithmetic.

use ags_bench::{compare, engine, experiment, f, figure_spec, print_sweep_stats, Table};
use p7_control::GuardbandMode;
use p7_sim::Placement;

const CORES: [usize; 5] = [1, 2, 4, 6, 8];

fn main() {
    let policy_cfg = experiment();
    let policy = &policy_cfg.config().policy;
    let static_mv = policy.static_guardband.millivolts();
    let residual_mv = policy.residual_guardband.millivolts();

    let spec = figure_spec(&["raytrace"], &CORES)
        .with_modes(vec![GuardbandMode::Undervolt])
        .with_ticks(60, 30);
    let report = engine().run(&spec).expect("guardband budget sweep");

    let mut table = Table::new(
        &format!("Guardband ledger — raytrace, {static_mv:.0} mV static budget"),
        &[
            "cores",
            "passive mV",
            "typical di/dt mV",
            "worst reserve mV",
            "residual mV",
            "reclaimed (UV) mV",
            "accounted mV",
        ],
    );

    let mut reclaimed = Vec::new();
    for cores in CORES {
        let run = report
            .outcome(
                "raytrace",
                cores,
                Placement::SingleSocket,
                GuardbandMode::Undervolt,
            )
            .expect("undervolt point in grid");
        let s0 = run.summary.socket0();
        let drop = s0.drop[0];
        let undervolt = s0.undervolt.millivolts();
        let passive = drop.passive().millivolts();
        let typical = drop.typical_didt.millivolts();
        // The firmware's effective worst-case reserve: whatever of the
        // budget is neither reclaimed nor spent on steady drop/ripple.
        let worst_reserve = (static_mv - undervolt - passive - typical - residual_mv).max(0.0);
        let accounted = undervolt + passive + typical + worst_reserve + residual_mv;
        reclaimed.push(undervolt);
        table.row(&[
            cores.to_string(),
            f(passive, 1),
            f(typical, 1),
            f(worst_reserve, 1),
            f(residual_mv, 1),
            f(undervolt, 1),
            f(accounted, 1),
        ]);
    }

    table.print();
    table.save_csv("study_guardband_budget");
    println!();
    compare(
        "the budget always balances",
        "accounted ≈ static guardband",
        &format!("{static_mv:.0} mV at every load"),
    );
    compare(
        "reclaimable margin, 1 → 8 cores",
        "collapses as passive drop eats the budget",
        &format!(
            "{} → {} mV",
            f(reclaimed[0], 1),
            f(reclaimed[reclaimed.len() - 1], 1)
        ),
    );
    print_sweep_stats(&report.stats);
}
