//! Figure 10 — the causal chain from workload power to adaptive
//! guardbanding's headroom, across 44+ workloads at eight active cores.
//!
//! Paper: (a) passive drop is linear in chip power; (b) larger passive
//! drop leaves less room to undervolt, so the selected Vdd rises;
//! (c) higher selected Vdd means smaller energy savings; (d) larger
//! passive drop also caps the frequency boost.

use ags_bench::{compare, engine, f, pearson, print_sweep_stats, Table};
use p7_control::GuardbandMode;
use p7_sim::{Placement, SweepSpec};

fn main() {
    let spec = SweepSpec::fig10_grid();
    let report = engine().run(&spec).expect("fig10 sweep");

    let mut table = Table::new(
        "Fig. 10 — per-workload scatter at 8 active cores",
        &[
            "workload",
            "power W",
            "passive mV",
            "undervolt mV",
            "Vdd sel mV",
            "energy save %",
            "freq boost %",
        ],
    );

    let mut power = Vec::new();
    let mut passive = Vec::new();
    let mut undervolt = Vec::new();
    let mut vdd = Vec::new();
    let mut energy_saving = Vec::new();
    let mut boost = Vec::new();

    for name in &spec.workloads {
        let place = Placement::SingleSocket;
        let st = report
            .outcome(name, 8, place, GuardbandMode::StaticGuardband)
            .expect("static point in grid");
        let uv = report
            .outcome(name, 8, place, GuardbandMode::Undervolt)
            .expect("undervolt point in grid");

        // Passive drop as measured in the static (AG off) configuration.
        let p_drop = st.summary.socket0().core0_passive_drop().millivolts();
        let uv_mv = uv.summary.socket0().undervolt.millivolts();
        let vdd_mv = uv.summary.socket0().avg_set_point.millivolts();
        // Energy saving of undervolting at identical runtime (same clock).
        let e_save = report
            .power_saving_percent(name, 8, place, GuardbandMode::Undervolt)
            .expect("both points in grid");
        let b = report
            .frequency_boost_percent(name, 8, place, GuardbandMode::Overclock)
            .expect("overclock point in grid");

        table.row(&[
            name.clone(),
            f(st.chip_power().0, 1),
            f(p_drop, 1),
            f(uv_mv, 1),
            f(vdd_mv, 0),
            f(e_save, 1),
            f(b, 1),
        ]);
        power.push(st.chip_power().0);
        passive.push(p_drop);
        undervolt.push(uv_mv);
        vdd.push(vdd_mv);
        energy_saving.push(e_save);
        boost.push(b);
    }

    table.print();
    table.save_csv("fig10");
    println!();

    compare(
        "(a) passive drop vs chip power",
        "strong positive linear",
        &format!("r = {}", f(pearson(&power, &passive), 3)),
    );
    compare(
        "(b) undervolt amount vs passive drop",
        "strong negative (slope ≈ −1)",
        &format!("r = {}", f(pearson(&passive, &undervolt), 3)),
    );
    compare(
        "(b') selected Vdd vs passive drop",
        "strong positive",
        &format!("r = {}", f(pearson(&passive, &vdd), 3)),
    );
    compare(
        "(c) energy saving vs selected Vdd",
        "strong negative",
        &format!("r = {}", f(pearson(&vdd, &energy_saving), 3)),
    );
    compare(
        "(d) frequency boost vs passive drop",
        "strong negative",
        &format!("r = {}", f(pearson(&passive, &boost), 3)),
    );
    compare(
        "population",
        "44 workloads (17 PARSEC/SPLASH-2 + 27 SPECrate)",
        &format!("{} workloads", power.len()),
    );
    print_sweep_stats(&report.stats);
}
