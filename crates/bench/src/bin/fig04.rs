//! Figure 4 — frequency boost and execution-time speedup as active cores
//! scale (lu_cb, overclocking mode).
//!
//! Paper: frequency gain of up to 10 % at one active core dropping to 4 %
//! at eight (Fig. 4a); execution speedup 8 % → 3 % (Fig. 4b).

use ags_bench::{compare, engine, f, figure_spec, print_sweep_stats, Table};
use p7_control::GuardbandMode;
use p7_sim::Placement;

const CORES: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn main() {
    let spec = figure_spec(&["lu_cb"], &CORES)
        .with_modes(vec![
            GuardbandMode::StaticGuardband,
            GuardbandMode::Overclock,
        ])
        .with_ticks(60, 30);
    let report = engine().run(&spec).expect("fig04 sweep");

    let mut table = Table::new(
        "Fig. 4 — lu_cb, overclocking vs static guardband",
        &[
            "cores",
            "static MHz",
            "adaptive MHz",
            "boost %",
            "static s",
            "adaptive s",
            "speedup %",
        ],
    );

    let mut boost = [0.0f64; 9];
    let mut speedup = [0.0f64; 9];
    for cores in CORES {
        let place = Placement::SingleSocket;
        let static_run = report
            .outcome("lu_cb", cores, place, GuardbandMode::StaticGuardband)
            .expect("static point in grid");
        let adaptive = report
            .outcome("lu_cb", cores, place, GuardbandMode::Overclock)
            .expect("overclock point in grid");

        boost[cores] = report
            .frequency_boost_percent("lu_cb", cores, place, GuardbandMode::Overclock)
            .expect("both points in grid");
        speedup[cores] =
            (static_run.exec_time.0 - adaptive.exec_time.0) / static_run.exec_time.0 * 100.0;

        table.row(&[
            cores.to_string(),
            f(static_run.summary.avg_running_freq.0, 0),
            f(adaptive.summary.avg_running_freq.0, 0),
            f(boost[cores], 1),
            f(static_run.exec_time.0, 1),
            f(adaptive.exec_time.0, 1),
            f(speedup[cores], 1),
        ]);
    }

    table.print();
    table.save_csv("fig04");
    println!();
    compare(
        "frequency boost, 1 active core",
        "10 %",
        &format!("{} %", f(boost[1], 1)),
    );
    compare(
        "frequency boost, 8 active cores",
        "4 %",
        &format!("{} %", f(boost[8], 1)),
    );
    compare(
        "execution speedup, 1 active core",
        "8 %",
        &format!("{} %", f(speedup[1], 1)),
    );
    compare(
        "execution speedup, 8 active cores",
        "3 %",
        &format!("{} %", f(speedup[8], 1)),
    );
    print_sweep_stats(&report.stats);
}
