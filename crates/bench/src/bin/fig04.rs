//! Figure 4 — frequency boost and execution-time speedup as active cores
//! scale (lu_cb, overclocking mode).
//!
//! Paper: frequency gain of up to 10 % at one active core dropping to 4 %
//! at eight (Fig. 4a); execution speedup 8 % → 3 % (Fig. 4b).

use ags_bench::{compare, experiment, f, Table};
use p7_control::GuardbandMode;
use p7_sim::Assignment;
use p7_workloads::Catalog;

fn main() {
    let exp = experiment();
    let catalog = Catalog::power7plus();
    let lu_cb = catalog.get("lu_cb").expect("lu_cb in catalog");

    let mut table = Table::new(
        "Fig. 4 — lu_cb, overclocking vs static guardband",
        &[
            "cores",
            "static MHz",
            "adaptive MHz",
            "boost %",
            "static s",
            "adaptive s",
            "speedup %",
        ],
    );

    let mut boost = [0.0f64; 9];
    let mut speedup = [0.0f64; 9];
    for cores in 1..=8usize {
        let assignment =
            Assignment::single_socket(lu_cb, cores).expect("valid single-socket assignment");
        let static_run = exp
            .run(&assignment, GuardbandMode::StaticGuardband)
            .expect("static run");
        let adaptive = exp
            .run(&assignment, GuardbandMode::Overclock)
            .expect("overclock run");

        boost[cores] = (adaptive.summary.avg_running_freq.0 - static_run.summary.avg_running_freq.0)
            / static_run.summary.avg_running_freq.0
            * 100.0;
        speedup[cores] =
            (static_run.exec_time.0 - adaptive.exec_time.0) / static_run.exec_time.0 * 100.0;

        table.row(&[
            cores.to_string(),
            f(static_run.summary.avg_running_freq.0, 0),
            f(adaptive.summary.avg_running_freq.0, 0),
            f(boost[cores], 1),
            f(static_run.exec_time.0, 1),
            f(adaptive.exec_time.0, 1),
            f(speedup[cores], 1),
        ]);
    }

    table.print();
    table.save_csv("fig04");
    println!();
    compare("frequency boost, 1 active core", "10 %", &format!("{} %", f(boost[1], 1)));
    compare("frequency boost, 8 active cores", "4 %", &format!("{} %", f(boost[8], 1)));
    compare("execution speedup, 1 active core", "8 %", &format!("{} %", f(speedup[1], 1)));
    compare("execution speedup, 8 active cores", "3 %", &format!("{} %", f(speedup[8], 1)));
}
