//! Figure 13 — adaptive guardbanding's power improvement over static
//! guardbanding, consolidation vs loadline borrowing, for every PARSEC and
//! SPLASH-2 workload across core counts.
//!
//! Paper: at eight active cores the consolidated schedules average 5.5 %
//! improvement over static guardbanding while loadline borrowing averages
//! 13.8 % — borrowing effectively doubles adaptive guardbanding's benefit
//! and clusters the workloads back together.

use ags_bench::{compare, f, mean, sweep_experiment, Table};
use ags_core::LoadlineBorrowing;
use p7_workloads::Catalog;

fn main() {
    let exp = sweep_experiment();
    let catalog = Catalog::power7plus();
    let lb = LoadlineBorrowing::new(exp);

    let workloads = catalog.parsec_splash();
    let mut per_count_cons: Vec<Vec<f64>> = vec![Vec::new(); 9];
    let mut per_count_borr: Vec<Vec<f64>> = vec![Vec::new(); 9];

    let mut table = Table::new(
        "Fig. 13 — improvement over static guardband (%), per workload",
        &[
            "workload", "mode", "1", "2", "3", "4", "5", "6", "7", "8",
        ],
    );

    for w in &workloads {
        let mut cons_row = vec![w.name().to_owned(), "consolidated".to_owned()];
        let mut borr_row = vec![w.name().to_owned(), "borrowed".to_owned()];
        for cores in 1..=8usize {
            let (cons, borr) = lb
                .improvement_vs_static(w, cores)
                .expect("improvement runs");
            per_count_cons[cores].push(cons);
            per_count_borr[cores].push(borr);
            cons_row.push(f(cons, 1));
            borr_row.push(f(borr, 1));
        }
        table.row(&cons_row);
        table.row(&borr_row);
    }

    table.print();
    table.save_csv("fig13");
    println!();

    let mut avg_table = Table::new(
        "Fig. 13 — suite-average improvement (%)",
        &["cores", "consolidated", "borrowed"],
    );
    for cores in 1..=8usize {
        avg_table.row(&[
            cores.to_string(),
            f(mean(&per_count_cons[cores]), 1),
            f(mean(&per_count_borr[cores]), 1),
        ]);
    }
    avg_table.print();
    avg_table.save_csv("fig13_avg");
    println!();

    let cons8 = mean(&per_count_cons[8]);
    let borr8 = mean(&per_count_borr[8]);
    compare(
        "average improvement at 8 cores, consolidated",
        "5.5 %",
        &format!("{} %", f(cons8, 1)),
    );
    compare(
        "average improvement at 8 cores, borrowed",
        "13.8 %",
        &format!("{} %", f(borr8, 1)),
    );
    compare(
        "borrowing multiplier over consolidation",
        "~2.5×",
        &format!("{}×", f(borr8 / cons8, 2)),
    );
}
