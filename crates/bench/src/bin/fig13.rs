//! Figure 13 — adaptive guardbanding's power improvement over static
//! guardbanding, consolidation vs loadline borrowing, for every PARSEC and
//! SPLASH-2 workload across core counts.
//!
//! Paper: at eight active cores the consolidated schedules average 5.5 %
//! improvement over static guardbanding while loadline borrowing averages
//! 13.8 % — borrowing effectively doubles adaptive guardbanding's benefit
//! and clusters the workloads back together.

use ags_bench::{compare, engine, f, figure_spec, mean, print_sweep_stats, Table};
use p7_control::GuardbandMode;
use p7_sim::Placement;
use p7_workloads::Catalog;

const CORES: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn main() {
    let catalog = Catalog::power7plus();
    let names: Vec<&str> = catalog.parsec_splash().iter().map(|w| w.name()).collect();
    let spec = figure_spec(&names, &CORES)
        .with_modes(vec![
            GuardbandMode::StaticGuardband,
            GuardbandMode::Undervolt,
        ])
        .with_placements(vec![Placement::Consolidated, Placement::Borrowed]);
    let report = engine().run(&spec).expect("fig13 sweep");

    let mut per_count_cons: Vec<Vec<f64>> = vec![Vec::new(); 9];
    let mut per_count_borr: Vec<Vec<f64>> = vec![Vec::new(); 9];

    let mut table = Table::new(
        "Fig. 13 — improvement over static guardband (%), per workload",
        &["workload", "mode", "1", "2", "3", "4", "5", "6", "7", "8"],
    );

    for name in &names {
        let mut cons_row = vec![(*name).to_owned(), "consolidated".to_owned()];
        let mut borr_row = vec![(*name).to_owned(), "borrowed".to_owned()];
        for cores in CORES {
            // The paper's Fig. 13 reference: the static-guardband
            // *consolidated* schedule, for both placements.
            let base = report
                .outcome(
                    name,
                    cores,
                    Placement::Consolidated,
                    GuardbandMode::StaticGuardband,
                )
                .expect("static consolidated point in grid")
                .total_power()
                .0;
            let cons_uv = report
                .outcome(
                    name,
                    cores,
                    Placement::Consolidated,
                    GuardbandMode::Undervolt,
                )
                .expect("consolidated undervolt point in grid")
                .total_power()
                .0;
            let borr_uv = report
                .outcome(name, cores, Placement::Borrowed, GuardbandMode::Undervolt)
                .expect("borrowed undervolt point in grid")
                .total_power()
                .0;
            let cons = (base - cons_uv) / base * 100.0;
            let borr = (base - borr_uv) / base * 100.0;
            per_count_cons[cores].push(cons);
            per_count_borr[cores].push(borr);
            cons_row.push(f(cons, 1));
            borr_row.push(f(borr, 1));
        }
        table.row(&cons_row);
        table.row(&borr_row);
    }

    table.print();
    table.save_csv("fig13");
    println!();

    let mut avg_table = Table::new(
        "Fig. 13 — suite-average improvement (%)",
        &["cores", "consolidated", "borrowed"],
    );
    for cores in CORES {
        avg_table.row(&[
            cores.to_string(),
            f(mean(&per_count_cons[cores]), 1),
            f(mean(&per_count_borr[cores]), 1),
        ]);
    }
    avg_table.print();
    avg_table.save_csv("fig13_avg");
    println!();

    let cons8 = mean(&per_count_cons[8]);
    let borr8 = mean(&per_count_borr[8]);
    compare(
        "average improvement at 8 cores, consolidated",
        "5.5 %",
        &format!("{} %", f(cons8, 1)),
    );
    compare(
        "average improvement at 8 cores, borrowed",
        "13.8 %",
        &format!("{} %", f(borr8, 1)),
    );
    compare(
        "borrowing multiplier over consolidation",
        "~2.5×",
        &format!("{}×", f(borr8 / cons8, 2)),
    );
    print_sweep_stats(&report.stats);
}
