//! Study — aging: insurance you pay for up front vs as you go.
//!
//! The static guardband's aging allowance is sized for the end of life;
//! the part wastes that margin while it is young. Adaptive guardbanding's
//! CPMs measure the paths that actually aged, so its undervolt shrinks
//! only as drift really accumulates. This study runs the same experiment
//! on a part at several ages by shifting the frequency–voltage curve.

use ags_bench::{compare, f, jobs_from_args, Table, FIGURE_SEED};
use p7_control::{AgingModel, GuardbandMode};
use p7_sim::sweep::run_indexed;
use p7_sim::{Assignment, CachedExperiment, Experiment, ServerConfig};
use p7_workloads::{Catalog, ExecutionModel};

const AGES: [f64; 4] = [0.0, 1.0, 5.0, 10.0];

fn main() {
    let catalog = Catalog::power7plus();
    let raytrace = catalog.get("raytrace").expect("raytrace in catalog");
    let aging = AgingModel::power7plus();
    let base_curve = p7_control::VoltFreqCurve::power7plus();

    let mut table = Table::new(
        "Aging: adaptive undervolt vs static day-one allowance (raytrace, 2 threads)",
        &[
            "age years",
            "drift mV",
            "static waste mV",
            "adaptive UV mV",
            "adaptive saving %",
        ],
    );

    let a = Assignment::single_socket(raytrace, 2).expect("valid assignment");
    let runs = run_indexed(jobs_from_args(), AGES.len(), |i| {
        let years = AGES[i];
        let mut cfg = ServerConfig::power7plus(FIGURE_SEED);
        // Age the silicon. The static design's nominal voltage stays where
        // day-one worst-case sizing put it: the shifted curve consumes
        // guardband from below, exactly like a slow voltage drop.
        cfg.curve = aging
            .aged_curve(&base_curve, years)
            .expect("valid aged curve");
        cfg.policy.static_guardband -= aging.drift_at_years(years);
        let exp = CachedExperiment::new(
            Experiment::with_config(cfg, ExecutionModel::power7plus()).with_ticks(30, 15),
        );
        let st = exp
            .run(&a, GuardbandMode::StaticGuardband)
            .expect("static run");
        let uv = exp
            .run(&a, GuardbandMode::Undervolt)
            .expect("undervolt run");
        (st, uv)
    });

    let mut savings = Vec::new();
    for (years, (st, uv)) in AGES.iter().copied().zip(&runs) {
        let saving = (st.chip_power().0 - uv.chip_power().0) / st.chip_power().0 * 100.0;
        savings.push(saving);
        table.row(&[
            f(years, 1),
            f(aging.drift_at_years(years).millivolts(), 1),
            f(aging.static_waste_at_years(years).millivolts(), 1),
            f(uv.summary.socket0().undervolt.millivolts(), 1),
            f(saving, 1),
        ]);
    }

    table.print();
    table.save_csv("study_aging");
    println!();
    compare(
        "adaptive saving on a young part",
        "includes the unspent aging allowance",
        &format!("{} %", f(savings[0], 1)),
    );
    compare(
        "adaptive saving at end of life",
        "declines only by the drift actually accrued",
        &format!("{} %", f(savings[3], 1)),
    );
    compare(
        "static design's wasted margin on day one",
        "the full end-of-life allowance",
        &format!("{} mV", f(aging.static_waste_at_years(0.0).millivolts(), 1)),
    );
}
