//! Figure 6 — CPM characterization: mapping CPM output to on-chip voltage.
//!
//! The paper disables adaptive guardbanding, throttles the cores, and
//! sweeps voltage at each frequency while reading all 40 CPMs through
//! AMESTER. Result: a near-linear CPM↔voltage relationship worth ≈21 mV
//! per CPM tap at peak frequency (Fig. 6a), with per-core sensitivity
//! spread from process variation (Fig. 6b).

use ags_bench::{compare, f, pearson, Table, FIGURE_SEED};
use p7_control::VoltFreqCurve;
use p7_sensors::CpmBank;
use p7_types::{seed_for, CoreId, MegaHertz, Volts};

fn main() {
    let curve = VoltFreqCurve::power7plus();
    // The same per-chip seed derivation the simulator uses for socket 0.
    let bank = CpmBank::with_seed(seed_for(FIGURE_SEED, "chip0"));

    // ---- Fig. 6a: mean CPM output vs voltage, one line per frequency ----
    let freqs: Vec<f64> = (0..6).map(|i| 2800.0 + 280.0 * f64::from(i)).collect();
    let mut headers: Vec<String> = vec!["mV".to_owned()];
    headers.extend(freqs.iter().map(|fr| format!("{fr:.0}MHz")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("Fig. 6a — mean CPM output vs supply voltage", &header_refs);

    let mut v4200 = Vec::new();
    let mut cpm4200 = Vec::new();
    for mv in (940..=1220).step_by(20) {
        let v = Volts::from_millivolts(f64::from(mv));
        let mut row = vec![mv.to_string()];
        for &fr in &freqs {
            let fmhz = MegaHertz(fr);
            let margin = v - curve.v_circuit(fmhz);
            let margins = [margin; 8];
            let fs = [fmhz; 8];
            let readings = bank.read_all(&margins, &fs);
            let mean: f64 =
                readings.iter().map(|r| f64::from(r.value())).sum::<f64>() / readings.len() as f64;
            if (fr - 4200.0).abs() < 1.0 && (0.5..10.5).contains(&mean) {
                v4200.push(f64::from(mv));
                cpm4200.push(mean);
            }
            row.push(f(mean, 2));
        }
        table.row(&row);
    }
    table.print();
    table.save_csv("fig06a");
    println!();

    // Linear fit at peak frequency: mV per CPM tap.
    let slope_taps_per_mv = {
        let n = v4200.len() as f64;
        let mx = v4200.iter().sum::<f64>() / n;
        let my = cpm4200.iter().sum::<f64>() / n;
        let sxy: f64 = v4200
            .iter()
            .zip(&cpm4200)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum();
        let sxx: f64 = v4200.iter().map(|x| (x - mx).powi(2)).sum();
        sxy / sxx
    };
    let mv_per_tap = 1.0 / slope_taps_per_mv;
    let linearity = pearson(&v4200, &cpm4200);

    // ---- Fig. 6b: per-core sensitivity (mV per tap) vs frequency --------
    let mut table_b = Table::new(
        "Fig. 6b — per-core CPM sensitivity (mV/tap) vs frequency",
        &[
            "MHz", "core0", "core1", "core2", "core3", "core4", "core5", "core6", "core7",
        ],
    );
    let mut spread_at_peak = (f64::MAX, f64::MIN);
    for mhz in (3600..=4200).step_by(120) {
        let fmhz = MegaHertz(f64::from(mhz));
        let mut row = vec![mhz.to_string()];
        for core in CoreId::all() {
            let sens: Vec<f64> = bank
                .iter()
                .filter(|m| m.id().core() == core)
                .map(|m| m.sensitivity_at(fmhz).millivolts())
                .collect();
            let mean = sens.iter().sum::<f64>() / sens.len() as f64;
            if mhz == 4200 {
                spread_at_peak.0 = spread_at_peak.0.min(mean);
                spread_at_peak.1 = spread_at_peak.1.max(mean);
            }
            row.push(f(mean, 1));
        }
        table_b.row(&row);
    }
    table_b.print();
    table_b.save_csv("fig06b");
    println!();

    compare(
        "CPM significance at peak frequency",
        "≈21 mV per tap",
        &format!("{} mV per tap", f(mv_per_tap, 1)),
    );
    compare(
        "CPM-voltage linearity",
        "near-linear",
        &format!("Pearson r = {}", f(linearity, 3)),
    );
    compare(
        "per-core sensitivity spread at 4.2 GHz",
        "visible spread across cores (process variation)",
        &format!(
            "{}–{} mV per tap",
            f(spread_at_peak.0, 1),
            f(spread_at_peak.1, 1)
        ),
    );
}
