//! Figure 12 — loadline borrowing on raytrace: undervolt depth and chip
//! power versus active cores, against the consolidated baseline.
//!
//! Paper: borrowing undervolts deeper at every core count (≈20 mV more at
//! one core from reduced per-rail idle current, ≈40 mV more at eight from
//! distributed dynamic power) and cuts total chip power by 1.6 %, 4.2 %
//! and 8.5 % at two, four and eight cores.

use ags_bench::{compare, engine, f, figure_spec, print_sweep_stats, Table};
use p7_control::GuardbandMode;
use p7_sim::Placement;

const CORES: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn main() {
    let spec = figure_spec(&["raytrace"], &CORES)
        .with_modes(vec![
            GuardbandMode::StaticGuardband,
            GuardbandMode::Undervolt,
        ])
        .with_placements(vec![Placement::Consolidated, Placement::Borrowed])
        .with_ticks(60, 30);
    let report = engine().run(&spec).expect("fig12 sweep");

    let mut table = Table::new(
        "Fig. 12 — raytrace: consolidation vs loadline borrowing",
        &[
            "cores",
            "static W",
            "baseline W",
            "borrow W",
            "uv base mV",
            "uv borrow mV",
            "power saving %",
        ],
    );

    let mut savings = [0.0f64; 9];
    let mut uv_gain = [0.0f64; 9];
    for cores in CORES {
        let static_run = report
            .outcome(
                "raytrace",
                cores,
                Placement::Consolidated,
                GuardbandMode::StaticGuardband,
            )
            .expect("static consolidated point in grid");
        let consolidated = report
            .outcome(
                "raytrace",
                cores,
                Placement::Consolidated,
                GuardbandMode::Undervolt,
            )
            .expect("consolidated undervolt point in grid");
        let borrowed = report
            .outcome(
                "raytrace",
                cores,
                Placement::Borrowed,
                GuardbandMode::Undervolt,
            )
            .expect("borrowed undervolt point in grid");
        let uv_base = consolidated.summary.socket0().undervolt.millivolts();
        // Borrowing's undervolt: mean of the two (loaded) rails.
        let uv_borrow = (borrowed.summary.sockets[0].undervolt.millivolts()
            + borrowed.summary.sockets[1].undervolt.millivolts())
            / 2.0;
        savings[cores] = (consolidated.total_power().0 - borrowed.total_power().0)
            / consolidated.total_power().0
            * 100.0;
        uv_gain[cores] = uv_borrow - uv_base;
        table.row(&[
            cores.to_string(),
            f(static_run.total_power().0, 1),
            f(consolidated.total_power().0, 1),
            f(borrowed.total_power().0, 1),
            f(uv_base, 1),
            f(uv_borrow, 1),
            f(savings[cores], 1),
        ]);
    }

    table.print();
    table.save_csv("fig12");
    println!();
    compare(
        "extra undervolt from borrowing, 1 core",
        "≈20 mV",
        &format!("{} mV", f(uv_gain[1], 1)),
    );
    compare(
        "extra undervolt from borrowing, 8 cores",
        "≈40 mV",
        &format!("{} mV", f(uv_gain[8], 1)),
    );
    compare(
        "power saving at 2 / 4 / 8 cores",
        "1.6 / 4.2 / 8.5 %",
        &format!(
            "{} / {} / {} %",
            f(savings[2], 1),
            f(savings[4], 1),
            f(savings[8], 1)
        ),
    );
    print_sweep_stats(&report.stats);
}
