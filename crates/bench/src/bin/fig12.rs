//! Figure 12 — loadline borrowing on raytrace: undervolt depth and chip
//! power versus active cores, against the consolidated baseline.
//!
//! Paper: borrowing undervolts deeper at every core count (≈20 mV more at
//! one core from reduced per-rail idle current, ≈40 mV more at eight from
//! distributed dynamic power) and cuts total chip power by 1.6 %, 4.2 %
//! and 8.5 % at two, four and eight cores.

use ags_bench::{compare, experiment, f, Table};
use ags_core::LoadlineBorrowing;
use p7_control::GuardbandMode;
use p7_sim::Assignment;
use p7_workloads::Catalog;

fn main() {
    let exp = experiment();
    let catalog = Catalog::power7plus();
    let raytrace = catalog.get("raytrace").expect("raytrace in catalog");
    let lb = LoadlineBorrowing::new(exp.clone());

    let mut table = Table::new(
        "Fig. 12 — raytrace: consolidation vs loadline borrowing",
        &[
            "cores",
            "static W",
            "baseline W",
            "borrow W",
            "uv base mV",
            "uv borrow mV",
            "power saving %",
        ],
    );

    let mut savings = [0.0f64; 9];
    let mut uv_gain = [0.0f64; 9];
    for cores in 1..=8usize {
        let eval = lb.evaluate(raytrace, cores).expect("borrowing evaluation");
        let static_run = exp
            .run(
                &Assignment::consolidated(raytrace, cores).expect("valid assignment"),
                GuardbandMode::StaticGuardband,
            )
            .expect("static run");
        let uv_base = eval.consolidated.summary.socket0().undervolt.millivolts();
        // Borrowing's undervolt: mean of the two (loaded) rails.
        let uv_borrow = (eval.borrowed.summary.sockets[0].undervolt.millivolts()
            + eval.borrowed.summary.sockets[1].undervolt.millivolts())
            / 2.0;
        savings[cores] = eval.power_saving_percent;
        uv_gain[cores] = uv_borrow - uv_base;
        table.row(&[
            cores.to_string(),
            f(static_run.total_power().0, 1),
            f(eval.consolidated.total_power().0, 1),
            f(eval.borrowed.total_power().0, 1),
            f(uv_base, 1),
            f(uv_borrow, 1),
            f(eval.power_saving_percent, 1),
        ]);
    }

    table.print();
    table.save_csv("fig12");
    println!();
    compare(
        "extra undervolt from borrowing, 1 core",
        "≈20 mV",
        &format!("{} mV", f(uv_gain[1], 1)),
    );
    compare(
        "extra undervolt from borrowing, 8 cores",
        "≈40 mV",
        &format!("{} mV", f(uv_gain[8], 1)),
    );
    compare(
        "power saving at 2 / 4 / 8 cores",
        "1.6 / 4.2 / 8.5 %",
        &format!(
            "{} / {} / {} %",
            f(savings[2], 1),
            f(savings[4], 1),
            f(savings[8], 1)
        ),
    );
}
