//! Figure 16 — the MIPS-based frequency predictor.
//!
//! The paper stresses all eight cores with every SPEC CPU2006, PARSEC and
//! SPLASH-2 workload, measures adaptive guardbanding's frequency choice,
//! and fits one linear model from chip-total MIPS to frequency. Paper:
//! root-mean-square error of only 0.3 %.

use ags_bench::{compare, f, sweep_experiment, Table};
use ags_core::predictor::{measure_point, MipsFrequencyPredictor};
use p7_workloads::Catalog;

fn main() {
    let exp = sweep_experiment();
    let catalog = Catalog::power7plus();

    let mut table = Table::new(
        "Fig. 16 — measured vs predicted frequency per workload",
        &[
            "workload",
            "chip MIPS",
            "measured MHz",
            "predicted MHz",
            "error %",
        ],
    );

    let mut data = Vec::new();
    let mut names = Vec::new();
    for w in catalog.scatter_set() {
        let (mips, freq) = measure_point(&exp, w).expect("training run");
        data.push((mips, freq.0));
        names.push(w.name().to_owned());
    }
    let model = MipsFrequencyPredictor::fit(&data).expect("fit over 40+ workloads");

    for (name, (mips, freq)) in names.iter().zip(&data) {
        let predicted = model.predict(*mips);
        table.row(&[
            name.clone(),
            f(*mips, 0),
            f(*freq, 0),
            f(predicted.0, 0),
            f((predicted.0 - freq) / freq * 100.0, 2),
        ]);
    }

    table.print();
    table.save_csv("fig16");
    println!();
    compare(
        "model form",
        "linear, negative slope",
        &format!(
            "f = {} {} MHz per kMIPS · MIPS",
            f(model.predict(0.0).0, 0),
            f(model.slope_mhz_per_mips() * 1000.0, 2)
        ),
    );
    compare(
        "fit RMSE",
        "0.3 %",
        &format!(
            "{} % ({} MHz)",
            f(model.rmse_percent(), 2),
            f(model.rmse_mhz(), 1)
        ),
    );
    compare(
        "training population",
        "SPEC + PARSEC + SPLASH-2, all cores stressed",
        &format!("{} workloads", model.samples()),
    );
}
