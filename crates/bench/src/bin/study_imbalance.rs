//! Study — workload imbalance on a shared rail.
//!
//! Sec. 4.2: "the processor has a single off-chip VRM that will need to
//! supply the highest voltage to match the most demanding core's voltage
//! requirement. So, even if some cores are lightly active, the system may
//! have to forgo their adaptive guardbanding benefits to support the
//! activity of the busy core(s). In applications where workload imbalance
//! exists, this can become a major efficiency impediment."
//!
//! We quantify that: eight light threads undervolt deeply; swapping just
//! one of them for a power-hungry thread drags the whole rail up, taxing
//! the seven innocent neighbours. The nine mixes run in parallel on the
//! sweep engine's low-level fan-out, through the shared solve cache.

use ags_bench::{compare, experiment, f, jobs_from_args, Table};
use p7_control::GuardbandMode;
use p7_sim::sweep::run_indexed;
use p7_sim::{Assignment, CachedExperiment};
use p7_workloads::Catalog;

fn main() {
    let exp = CachedExperiment::new(experiment());
    let catalog = Catalog::power7plus();
    let light = catalog.get("mcf").expect("mcf in catalog");
    let heavy = catalog.get("lu_cb").expect("lu_cb in catalog");

    let mut table = Table::new(
        "Workload imbalance: <#heavy lu_cb, #light mcf> on one rail (undervolt mode)",
        &["mix", "undervolt mV", "chip W", "W per light thread"],
    );

    let outcomes = run_indexed(jobs_from_args(), 9, |heavy_threads| {
        let mix: Vec<_> = (0..8)
            .map(|i| {
                if i < heavy_threads {
                    heavy.clone()
                } else {
                    light.clone()
                }
            })
            .collect();
        let assignment = Assignment::mixed_single_socket(&mix).expect("valid assignment");
        exp.run(&assignment, GuardbandMode::Undervolt)
            .expect("undervolt run")
    });

    let mut uv_all_light = 0.0;
    let mut uv_one_heavy = 0.0;
    for (heavy_threads, outcome) in outcomes.iter().enumerate() {
        let uv = outcome.summary.socket0().undervolt.millivolts();
        if heavy_threads == 0 {
            uv_all_light = uv;
        }
        if heavy_threads == 1 {
            uv_one_heavy = uv;
        }
        let light_threads = 8 - heavy_threads;
        let per_light = if light_threads > 0 {
            f(
                outcome.chip_power().0 / 8.0, // rail cost shared equally
                2,
            )
        } else {
            "-".to_owned()
        };
        table.row(&[
            format!("<{heavy_threads},{light_threads}>"),
            f(uv, 1),
            f(outcome.chip_power().0, 1),
            per_light,
        ]);
    }

    table.print();
    table.save_csv("study_imbalance");
    println!();
    compare(
        "undervolt with 8 light threads",
        "deep (low current, small drop)",
        &format!("{} mV", f(uv_all_light, 1)),
    );
    compare(
        "undervolt after adding ONE heavy thread",
        "whole rail forgoes benefit (Sec. 4.2)",
        &format!(
            "{} mV (−{} mV for 7 innocent threads)",
            f(uv_one_heavy, 1),
            f(uv_all_light - uv_one_heavy, 1)
        ),
    );
}
