//! Study — droop-frequency analysis.
//!
//! Sec. 4.3 mentions "our droop frequency analysis (not shown here)
//! indicates that such large worst-case droops occur infrequently". The
//! simulator's noise model makes that analysis reproducible: per active-
//! core count we histogram 3 000 telemetry windows of droop activity and
//! report how often deep droops actually occur — the reason adaptive
//! guardbanding can ride them out with the DPLL instead of provisioning
//! voltage for them.

use ags_bench::{compare, f, Table, FIGURE_SEED};
use p7_pdn::{DidtConfig, DidtModel};
use p7_types::Seconds;

const WINDOWS: usize = 3000;

fn main() {
    let mut table = Table::new(
        "Droop statistics per active-core count (3000 × 32 ms windows)",
        &[
            "active",
            "events/s",
            "mean worst mV",
            "p99 worst mV",
            "deep windows %",
        ],
    );

    let window = Seconds::from_millis(32.0);
    let mut mean_worst = Vec::new();
    let mut deep_fraction = Vec::new();
    for active in 1..=8usize {
        let mut model = DidtModel::new(DidtConfig::power7plus(), FIGURE_SEED);
        let mut worsts = Vec::with_capacity(WINDOWS);
        let mut events = 0u64;
        for _ in 0..WINDOWS {
            let s = model.sample_window(active, 1.0, window);
            worsts.push(s.worst.millivolts());
            events += u64::from(s.droop_events);
        }
        worsts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = worsts.iter().sum::<f64>() / worsts.len() as f64;
        let p99 = worsts[(worsts.len() as f64 * 0.99) as usize];
        // "Deep" = beyond 1.7× the single-core droop magnitude — the
        // outliers a static design would have to provision for.
        let deep_threshold = 1.7 * DidtConfig::power7plus().worst_base.millivolts();
        let deep =
            worsts.iter().filter(|&&w| w > deep_threshold).count() as f64 / WINDOWS as f64 * 100.0;
        mean_worst.push(mean);
        deep_fraction.push(deep);
        table.row(&[
            active.to_string(),
            f(events as f64 / (WINDOWS as f64 * window.0), 1),
            f(mean, 1),
            f(p99, 1),
            f(deep, 2),
        ]);
    }

    table.print();
    table.save_csv("study_droops");
    println!();
    compare(
        "worst-case droops grow with core count",
        "slight growth via alignment (Sec. 4.3)",
        &format!(
            "{} → {} mV mean",
            f(mean_worst[0], 1),
            f(mean_worst[7], 1)
        ),
    );
    compare(
        "deep droops are rare even at full load",
        "infrequent (paper's unshown analysis)",
        &format!("{} % of windows at 8 cores", f(deep_fraction[7], 2)),
    );
}
