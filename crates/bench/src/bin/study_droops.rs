//! Study — droop-frequency analysis.
//!
//! Sec. 4.3 mentions "our droop frequency analysis (not shown here)
//! indicates that such large worst-case droops occur infrequently". The
//! simulator's noise model makes that analysis reproducible: per active-
//! core count we histogram 3 000 telemetry windows of droop activity and
//! report how often deep droops actually occur — the reason adaptive
//! guardbanding can ride them out with the DPLL instead of provisioning
//! voltage for them. The eight per-core-count histograms are independent
//! (each reseeds its own noise model), so they fan out across workers.

use ags_bench::{compare, f, jobs_from_args, Table, FIGURE_SEED};
use p7_pdn::{DidtConfig, DidtModel};
use p7_sim::sweep::run_indexed;
use p7_types::Seconds;

const WINDOWS: usize = 3000;

struct DroopStats {
    events_per_sec: f64,
    mean_worst: f64,
    p99_worst: f64,
    deep_percent: f64,
}

fn main() {
    let mut table = Table::new(
        "Droop statistics per active-core count (3000 × 32 ms windows)",
        &[
            "active",
            "events/s",
            "mean worst mV",
            "p99 worst mV",
            "deep windows %",
        ],
    );

    let window = Seconds::from_millis(32.0);
    let stats = run_indexed(jobs_from_args(), 8, |i| {
        let active = i + 1;
        let mut model = DidtModel::new(DidtConfig::power7plus(), FIGURE_SEED);
        let mut worsts = Vec::with_capacity(WINDOWS);
        let mut events = 0u64;
        for _ in 0..WINDOWS {
            let s = model.sample_window(active, 1.0, window);
            worsts.push(s.worst.millivolts());
            events += u64::from(s.droop_events);
        }
        worsts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = worsts.iter().sum::<f64>() / worsts.len() as f64;
        let p99 = worsts[(worsts.len() as f64 * 0.99) as usize];
        // "Deep" = beyond 1.7× the single-core droop magnitude — the
        // outliers a static design would have to provision for.
        let deep_threshold = 1.7 * DidtConfig::power7plus().worst_base.millivolts();
        let deep =
            worsts.iter().filter(|&&w| w > deep_threshold).count() as f64 / WINDOWS as f64 * 100.0;
        DroopStats {
            events_per_sec: events as f64 / (WINDOWS as f64 * window.0),
            mean_worst: mean,
            p99_worst: p99,
            deep_percent: deep,
        }
    });

    for (i, s) in stats.iter().enumerate() {
        table.row(&[
            (i + 1).to_string(),
            f(s.events_per_sec, 1),
            f(s.mean_worst, 1),
            f(s.p99_worst, 1),
            f(s.deep_percent, 2),
        ]);
    }

    table.print();
    table.save_csv("study_droops");
    println!();
    compare(
        "worst-case droops grow with core count",
        "slight growth via alignment (Sec. 4.3)",
        &format!(
            "{} → {} mV mean",
            f(stats[0].mean_worst, 1),
            f(stats[7].mean_worst, 1)
        ),
    );
    compare(
        "deep droops are rare even at full load",
        "infrequent (paper's unshown analysis)",
        &format!("{} % of windows at 8 cores", f(stats[7].deep_percent, 2)),
    );
}
