//! Figure 3 — adaptive guardbanding's power saving and EDP improvement as
//! active cores scale (raytrace, undervolting mode).
//!
//! Paper: 13 % power saving at one active core falling to ~3 % at eight
//! (Fig. 3a); ~20 % EDP improvement at one core, negligible additional
//! benefit beyond four (Fig. 3b).

use ags_bench::{compare, engine, f, figure_spec, print_sweep_stats, Table};
use p7_control::GuardbandMode;
use p7_sim::Placement;

const CORES: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn main() {
    let spec = figure_spec(&["raytrace"], &CORES)
        .with_modes(vec![
            GuardbandMode::StaticGuardband,
            GuardbandMode::Undervolt,
        ])
        .with_ticks(60, 30);
    let report = engine().run(&spec).expect("fig03 sweep");

    let mut table = Table::new(
        "Fig. 3 — raytrace, undervolting vs static guardband",
        &[
            "cores",
            "static W",
            "adaptive W",
            "saving %",
            "static EDP kJs",
            "adaptive EDP kJs",
            "EDP gain %",
        ],
    );

    let mut saving_1 = 0.0;
    let mut saving_8 = 0.0;
    let mut edp_gain_1 = 0.0;
    let mut edp_gain_beyond4 = Vec::new();
    for cores in CORES {
        let place = Placement::SingleSocket;
        let static_run = report
            .outcome("raytrace", cores, place, GuardbandMode::StaticGuardband)
            .expect("static point in grid");
        let adaptive = report
            .outcome("raytrace", cores, place, GuardbandMode::Undervolt)
            .expect("undervolt point in grid");

        let saving = report
            .power_saving_percent("raytrace", cores, place, GuardbandMode::Undervolt)
            .expect("both points in grid");
        let edp_gain = (static_run.edp - adaptive.edp) / static_run.edp * 100.0;
        if cores == 1 {
            saving_1 = saving;
            edp_gain_1 = edp_gain;
        }
        if cores == 8 {
            saving_8 = saving;
        }
        if cores > 4 {
            edp_gain_beyond4.push(edp_gain);
        }

        table.row(&[
            cores.to_string(),
            f(static_run.chip_power().0, 1),
            f(adaptive.chip_power().0, 1),
            f(saving, 1),
            f(static_run.edp / 1000.0, 2),
            f(adaptive.edp / 1000.0, 2),
            f(edp_gain, 1),
        ]);
    }

    table.print();
    table.save_csv("fig03");
    println!();
    compare(
        "power saving, 1 active core",
        "13 %",
        &format!("{} %", f(saving_1, 1)),
    );
    compare(
        "power saving, 8 active cores",
        "3 %",
        &format!("{} %", f(saving_8, 1)),
    );
    compare(
        "EDP improvement, 1 active core",
        "~20 %",
        &format!("{} %", f(edp_gain_1, 1)),
    );
    compare(
        "EDP improvement plateaus beyond 4 cores",
        "negligible additional gain",
        &format!("{} % at >4 cores", f(ags_bench::mean(&edp_gain_beyond4), 1)),
    );
    print_sweep_stats(&report.stats);
}
