//! Figure 7 — per-core on-chip voltage drop versus number of active cores
//! (static guardband, adaptive guardbanding disabled).
//!
//! Paper: drops grow from ~2 % to ~8 % of nominal as cores 0→7 activate in
//! succession; the trend is chip-global (idle cores sag too) with a local
//! jump of ~2 % the moment a core itself activates, and earlier-activated
//! cores rise first then plateau.

use ags_bench::{compare, engine, f, figure_spec, print_sweep_stats, Table, FIGURE_SEED};
use p7_control::GuardbandMode;
use p7_sim::{Placement, ServerConfig};
use p7_workloads::catalog::CORE_SCALING_SET;

const CORES: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn main() {
    let spec =
        figure_spec(&CORE_SCALING_SET, &CORES).with_modes(vec![GuardbandMode::StaticGuardband]);
    let report = engine().run(&spec).expect("fig07 sweep");
    let nominal = ServerConfig::power7plus(FIGURE_SEED).nominal_voltage();

    // drops[workload][active_cores-1][core] = drop % of nominal.
    let mut drops: Vec<(&str, Vec<[f64; 8]>)> = Vec::new();
    for name in CORE_SCALING_SET {
        let mut per_count = Vec::new();
        for active in CORES {
            let run = report
                .outcome(
                    name,
                    active,
                    Placement::SingleSocket,
                    GuardbandMode::StaticGuardband,
                )
                .expect("static point in grid");
            let row: [f64; 8] =
                std::array::from_fn(|core| run.summary.socket0().core_drop_percent(core, nominal));
            per_count.push(row);
        }
        drops.push((name, per_count));
    }

    for core in 0..8usize {
        let mut headers = vec!["active".to_owned()];
        headers.extend(CORE_SCALING_SET.iter().map(|n| (*n).to_owned()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(
            &format!("Fig. 7 — Core{core} voltage drop (% of nominal)"),
            &header_refs,
        );
        for active in CORES {
            let mut row = vec![active.to_string()];
            for (_, per_count) in &drops {
                row.push(f(per_count[active - 1][core], 2));
            }
            table.row(&row);
        }
        table.print();
        table.save_csv(&format!("fig07_core{core}"));
        println!();
    }

    // Headline checks on raytrace.
    let raytrace = &drops
        .iter()
        .find(|(n, _)| *n == "raytrace")
        .expect("raytrace")
        .1;
    compare(
        "core 0 drop, 1 → 8 active cores",
        "~2 % → ~8 %",
        &format!("{} % → {} %", f(raytrace[0][0], 1), f(raytrace[7][0], 1)),
    );
    compare(
        "idle core 7 sags while the top row works (global effect)",
        "clearly nonzero",
        &format!("{} % at 4 active cores", f(raytrace[3][7], 1)),
    );
    let before = raytrace[6][7]; // 7 active: core 7 still idle
    let after = raytrace[7][7]; // 8 active: core 7 now running
    compare(
        "core 7 local jump upon its own activation",
        "~2 % of nominal",
        &format!("{} %", f(after - before, 1)),
    );
    print_sweep_stats(&report.stats);
}
