//! Shared harness for the figure-regeneration binaries.
//!
//! Every figure of the paper's evaluation has a binary in `src/bin/`
//! (`fig03` … `fig17`, plus `ablation_*`). Each binary:
//!
//! 1. runs the experiments on the simulated Power 720 server,
//! 2. prints the same rows/series the paper's figure plots,
//! 3. prints a `paper vs measured` footer for the figure's headline
//!    numbers,
//! 4. saves the raw series as CSV under `target/figures/`.
//!
//! Absolute values are not expected to match the authors' testbed — the
//! substrate is a calibrated simulator — but the *shape* (who wins, by
//! roughly what factor, where crossovers fall) is asserted in the
//! integration tests and recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use p7_sim::sweep::SweepStats;
use p7_sim::{Experiment, SweepEngine, SweepSpec};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// The master seed every figure binary uses, so results are reproducible.
pub const FIGURE_SEED: u64 = 42;

/// The standard experiment runner for figures (~2 s settle + ~2 s measure).
#[must_use]
pub fn experiment() -> Experiment {
    Experiment::power7plus(FIGURE_SEED)
}

/// A faster runner for wide sweeps (still past the firmware settle time).
#[must_use]
pub fn sweep_experiment() -> Experiment {
    Experiment::power7plus(FIGURE_SEED).with_ticks(30, 15)
}

/// The `--jobs N` value from the process arguments (0 = auto-detect),
/// shared by every figure binary.
#[must_use]
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        }
    }
    0
}

/// The shared sweep engine every figure binary fans out on: `--jobs N`
/// workers (default: available parallelism), process-wide solve cache.
#[must_use]
pub fn engine() -> SweepEngine {
    SweepEngine::new(jobs_from_args())
}

/// A spec over `workloads × cores` with the figure defaults (seed 42,
/// sweep ticks 30/15, single-socket, all three modes).
#[must_use]
pub fn figure_spec(workloads: &[&str], cores: &[usize]) -> SweepSpec {
    SweepSpec::new(
        workloads.iter().map(|s| (*s).to_owned()).collect(),
        cores.to_vec(),
    )
    .with_seed(FIGURE_SEED)
}

/// Prints a sweep's throughput/cache footer to stderr (stderr so stdout
/// stays byte-identical across worker counts and cache temperatures).
pub fn print_sweep_stats(stats: &SweepStats) {
    eprintln!(
        "[sweep: {} points in {:.2} s with {} jobs — {:.1} points/s, cache {} hits / {} misses ({:.0} % hit rate)]",
        stats.points,
        stats.elapsed_secs,
        stats.jobs,
        stats.points_per_sec(),
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate() * 100.0
    );
}

/// A simple aligned text table that can also serialize itself to CSV.
///
/// # Examples
///
/// ```
/// use ags_bench::Table;
///
/// let mut t = Table::new("demo", &["cores", "saving %"]);
/// t.row(&["1".into(), "13.0".into()]);
/// let csv = t.to_csv();
/// assert!(csv.starts_with("cores,saving %"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells beyond the header count are kept as-is).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table to a string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Serializes to CSV (header row first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV under `target/figures/<name>.csv`; prints the path.
    pub fn save_csv(&self, name: &str) {
        let dir = figures_dir();
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        match fs::write(&path, self.to_csv()) {
            Ok(()) => println!("[saved {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// Where figure CSVs land.
#[must_use]
pub fn figures_dir() -> PathBuf {
    PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
        .join("figures")
}

/// Prints one `paper vs measured` comparison line.
pub fn compare(label: &str, paper: &str, measured: &str) {
    println!("  {label:<52} paper: {paper:<18} measured: {measured}");
}

/// Pearson correlation coefficient of paired samples.
///
/// # Examples
///
/// ```
/// use ags_bench::pearson;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    let n = xs.len() as f64;
    if xs.is_empty() {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum::<f64>().sqrt();
    let sy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum::<f64>().sqrt();
    if sx < 1e-12 || sy < 1e-12 {
        return 0.0;
    }
    cov / (sx * sy)
}

/// Mean of a slice (0 when empty).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Formats a float with the given number of decimals.
#[must_use]
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("t", &["a", "long-header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "2000".into()]);
        let s = t.render();
        assert!(s.contains("== t =="));
        assert!(s.contains("long-header"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("t", &["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn pearson_detects_anticorrelation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn mean_and_format_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
