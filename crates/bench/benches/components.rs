//! Criterion microbenchmarks of the simulator's hot components: how much
//! does one firmware window, one CPM read, one predictor call, or one
//! scheduling quantum actually cost?

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ags_core::{AdaptiveMappingScheduler, JobSpec, MipsFrequencyPredictor, QosSpec};
use p7_control::GuardbandMode;
use p7_sensors::CpmBank;
use p7_sim::{Assignment, Experiment, ServerConfig, Simulation};
use p7_types::{MegaHertz, Volts};
use p7_workloads::{co_runner, Catalog, CoRunnerClass, WebSearch};

fn bench_simulation_tick(c: &mut Criterion) {
    let catalog = Catalog::power7plus();
    let raytrace = catalog.get("raytrace").unwrap().clone();
    let assignment = Assignment::single_socket(&raytrace, 8).unwrap();
    let mut sim = Simulation::new(
        ServerConfig::power7plus(1),
        assignment,
        GuardbandMode::Undervolt,
    )
    .unwrap();
    c.bench_function("simulation_tick_32ms_window", |b| {
        b.iter(|| black_box(sim.tick()));
    });
}

fn bench_cpm_bank_read(c: &mut Criterion) {
    let bank = CpmBank::with_seed(7);
    let margins = [Volts::from_millivolts(60.0); 8];
    let freqs = [MegaHertz(4200.0); 8];
    c.bench_function("cpm_bank_read_all_40", |b| {
        b.iter(|| black_box(bank.read_all(black_box(&margins), black_box(&freqs))));
    });
}

fn bench_predictor(c: &mut Criterion) {
    let data: Vec<(f64, f64)> = (0..44)
        .map(|i| {
            let x = 10_000.0 + 1500.0 * f64::from(i);
            (x, 4700.0 - 0.004 * x + f64::from(i % 5))
        })
        .collect();
    c.bench_function("predictor_fit_44_points", |b| {
        b.iter(|| black_box(MipsFrequencyPredictor::fit(black_box(&data)).unwrap()));
    });
    let model = MipsFrequencyPredictor::fit(&data).unwrap();
    c.bench_function("predictor_predict", |b| {
        b.iter(|| black_box(model.predict(black_box(42_000.0))));
    });
}

fn bench_websearch_window(c: &mut Criterion) {
    let ws = WebSearch::power7plus();
    c.bench_function("websearch_60_windows", |b| {
        b.iter(|| black_box(ws.p90_windows(MegaHertz(4600.0), 60, 9)));
    });
}

fn bench_scheduler_quantum(c: &mut Criterion) {
    let catalog = Catalog::power7plus();
    let job = JobSpec::critical(
        "search",
        catalog.get("websearch").unwrap().clone(),
        QosSpec::websearch(),
    );
    let predictor =
        MipsFrequencyPredictor::fit(&[(10_000.0, 4600.0), (40_000.0, 4520.0), (70_000.0, 4440.0)])
            .unwrap();
    let mut scheduler = AdaptiveMappingScheduler::new(
        Experiment::power7plus(1).with_ticks(10, 5),
        predictor,
        job,
        WebSearch::power7plus(),
        vec![
            co_runner(CoRunnerClass::Light),
            co_runner(CoRunnerClass::Heavy),
        ],
        1,
        9,
    )
    .unwrap();
    scheduler.set_windows_per_quantum(20);
    c.bench_function("adaptive_mapping_quantum", |b| {
        b.iter(|| black_box(scheduler.run_quantum().unwrap()));
    });
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(20);
    targets = bench_simulation_tick,
        bench_cpm_bank_read,
        bench_predictor,
        bench_websearch_window,
        bench_scheduler_quantum
);
criterion_main!(components);
