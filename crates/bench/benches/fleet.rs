//! Benchmarks of the fleet engine's campaign throughput.
//!
//! `fleet_campaign_cold` runs a small flash-crowd campaign from an empty
//! solve cache — every distinct operating point is simulated through the
//! 16-lane group path. `fleet_campaign_warm` reruns the same campaign on
//! the populated cache, so it times the probe/placement/rollup overhead
//! that remains once memoization has absorbed the solves. The pair is
//! the single-worker throughput number EXPERIMENTS.md quotes; the
//! jobs-scaling claim is measured separately with `ags fleet --jobs N`
//! on multi-core hardware (criterion pins one thread here).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use p7_fleet::{FleetEngine, FleetSpec, TrafficModel};
use p7_sim::SolveCache;

/// A campaign big enough to exercise stealing-grade shard counts but
/// small enough for a bench iteration: 32 servers, one flash crowd.
fn bench_spec() -> FleetSpec {
    let mut spec = FleetSpec::smoke()
        .with_scale(32, 6)
        .with_traffic(TrafficModel::FlashCrowd);
    spec.measure_ticks = 4;
    spec.warmup_ticks = 2;
    spec
}

fn bench_campaign_cold(c: &mut Criterion) {
    let spec = bench_spec();
    c.bench_function("fleet_campaign_cold", |b| {
        b.iter(|| {
            let engine = FleetEngine::with_cache(1, Arc::new(SolveCache::new()));
            black_box(engine.run(&spec).expect("cold fleet campaign"))
        });
    });
}

fn bench_campaign_warm(c: &mut Criterion) {
    let spec = bench_spec();
    let engine = FleetEngine::with_cache(1, Arc::new(SolveCache::new()));
    engine.run(&spec).expect("cache-priming campaign");
    c.bench_function("fleet_campaign_warm", |b| {
        b.iter(|| black_box(engine.run(&spec).expect("warm fleet campaign")));
    });
}

criterion_group!(benches, bench_campaign_cold, bench_campaign_warm);
criterion_main!(benches);
