//! The telemetry layer's overhead contract, measured: the warm
//! simulation tick with observability disabled (the default), with the
//! metrics registry enabled, and with metrics plus span tracing enabled.
//!
//! The disabled number is the one the repo's performance budget holds to
//! the PR 2 baseline (every instrumented site must cost one predicted
//! branch); the enabled numbers quantify what `--metrics`/`--trace`
//! actually buy into the hot path. Raw registry operation costs are
//! benched alongside for attribution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use p7_control::GuardbandMode;
use p7_sim::{Assignment, ServerConfig, Simulation};
use p7_workloads::Catalog;

fn warm_sim() -> Simulation {
    let catalog = Catalog::power7plus();
    let raytrace = catalog.get("raytrace").unwrap().clone();
    let assignment = Assignment::single_socket(&raytrace, 8).unwrap();
    let mut sim = Simulation::new(
        ServerConfig::power7plus(1),
        assignment,
        GuardbandMode::Undervolt,
    )
    .unwrap();
    // Warm the solve seed and telemetry reservations out of the loop.
    for _ in 0..4 {
        let _ = sim.tick();
    }
    sim
}

fn bench_tick_disabled(c: &mut Criterion) {
    p7_obs::metrics::global().set_enabled(false);
    p7_obs::trace::disable();
    let mut sim = warm_sim();
    c.bench_function("obs_tick_disabled", |b| {
        b.iter(|| black_box(sim.tick()));
    });
}

fn bench_tick_metrics(c: &mut Criterion) {
    p7_obs::metrics::global().set_enabled(true);
    p7_sim::telemetry::register_all();
    p7_obs::trace::disable();
    let mut sim = warm_sim();
    c.bench_function("obs_tick_metrics_enabled", |b| {
        b.iter(|| black_box(sim.tick()));
    });
    p7_obs::metrics::global().set_enabled(false);
}

fn bench_tick_metrics_and_trace(c: &mut Criterion) {
    p7_obs::metrics::global().set_enabled(true);
    p7_sim::telemetry::register_all();
    p7_obs::trace::enable();
    let mut sim = warm_sim();
    c.bench_function("obs_tick_metrics_and_trace", |b| {
        b.iter(|| black_box(sim.tick()));
    });
    p7_obs::trace::disable();
    p7_obs::metrics::global().set_enabled(false);
    let _ = p7_obs::trace::collect();
}

fn bench_registry_primitives(c: &mut Criterion) {
    let registry = p7_obs::metrics::Registry::new();
    let counter = registry.counter("bench_ops_total", "bench counter");
    static BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0];
    let histogram = registry.histogram("bench_obs", "bench histogram", BOUNDS);
    c.bench_function("obs_counter_inc", |b| {
        b.iter(|| counter.inc());
    });
    c.bench_function("obs_histogram_observe", |b| {
        b.iter(|| histogram.observe(black_box(3.0)));
    });
    registry.set_enabled(false);
    c.bench_function("obs_counter_inc_disabled", |b| {
        b.iter(|| counter.inc());
    });
}

criterion_group!(
    benches,
    bench_tick_disabled,
    bench_tick_metrics,
    bench_tick_metrics_and_trace,
    bench_registry_primitives
);
criterion_main!(benches);
