//! The telemetry layer's overhead contract, measured: the warm
//! simulation tick with observability disabled (the default), with the
//! metrics registry enabled, and with metrics plus span tracing enabled.
//!
//! The disabled number is the one the repo's performance budget holds to
//! the PR 2 baseline (every instrumented site must cost one predicted
//! branch); the enabled numbers quantify what `--metrics`/`--trace`
//! actually buy into the hot path. Raw registry operation costs are
//! benched alongside for attribution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use p7_control::GuardbandMode;
use p7_sim::{Assignment, ServerConfig, Simulation};
use p7_workloads::Catalog;

fn warm_sim() -> Simulation {
    let catalog = Catalog::power7plus();
    let raytrace = catalog.get("raytrace").unwrap().clone();
    let assignment = Assignment::single_socket(&raytrace, 8).unwrap();
    let mut sim = Simulation::new(
        ServerConfig::power7plus(1),
        assignment,
        GuardbandMode::Undervolt,
    )
    .unwrap();
    // Warm the solve seed and telemetry reservations out of the loop.
    for _ in 0..4 {
        let _ = sim.tick();
    }
    sim
}

fn bench_tick_disabled(c: &mut Criterion) {
    p7_obs::metrics::global().set_enabled(false);
    p7_obs::trace::disable();
    let mut sim = warm_sim();
    c.bench_function("obs_tick_disabled", |b| {
        b.iter(|| black_box(sim.tick()));
    });
}

fn bench_tick_metrics(c: &mut Criterion) {
    p7_obs::metrics::global().set_enabled(true);
    p7_sim::telemetry::register_all();
    p7_obs::trace::disable();
    let mut sim = warm_sim();
    c.bench_function("obs_tick_metrics_enabled", |b| {
        b.iter(|| black_box(sim.tick()));
    });
    p7_obs::metrics::global().set_enabled(false);
}

fn bench_tick_metrics_and_trace(c: &mut Criterion) {
    p7_obs::metrics::global().set_enabled(true);
    p7_sim::telemetry::register_all();
    p7_obs::trace::enable();
    let mut sim = warm_sim();
    c.bench_function("obs_tick_metrics_and_trace", |b| {
        b.iter(|| black_box(sim.tick()));
    });
    p7_obs::trace::disable();
    p7_obs::metrics::global().set_enabled(false);
    let _ = p7_obs::trace::collect();
}

fn bench_tick_full_observability(c: &mut Criterion) {
    // Metrics + tracing + a live flight recorder: the recorder samples
    // from another cadence entirely (a daemon thread in production), so
    // its presence must not move the tick number — this bench holds the
    // "with recorder" tick to the same 2% bar as metrics+trace.
    p7_obs::metrics::global().set_enabled(true);
    p7_sim::telemetry::register_all();
    p7_obs::trace::enable();
    let recorder = p7_obs::timeseries::Recorder::new(p7_obs::timeseries::DEFAULT_CAPACITY);
    recorder.sample(p7_obs::metrics::global(), p7_obs::timeseries::wall_ms());
    let mut sim = warm_sim();
    c.bench_function("obs_tick_metrics_trace_recorder", |b| {
        b.iter(|| black_box(sim.tick()));
    });
    p7_obs::trace::disable();
    p7_obs::metrics::global().set_enabled(false);
    let _ = p7_obs::trace::collect();
}

fn bench_recorder_and_logger(c: &mut Criterion) {
    // Attribution for the flight recorder's own costs (off the tick
    // path): one registry snapshot into the ring, and a windowed
    // downsampled history query over a full ring.
    p7_obs::metrics::global().set_enabled(true);
    p7_sim::telemetry::register_all();
    let recorder = p7_obs::timeseries::Recorder::new(p7_obs::timeseries::DEFAULT_CAPACITY);
    let mut t_ms = 1_000_000u64;
    c.bench_function("obs_recorder_sample", |b| {
        b.iter(|| {
            t_ms += 500;
            black_box(recorder.sample(p7_obs::metrics::global(), t_ms));
        });
    });
    c.bench_function("obs_recorder_history", |b| {
        b.iter(|| {
            black_box(recorder.history(black_box(Some("ags_sim_ticks_total")), 300_000, t_ms, 256));
        });
    });
    p7_obs::metrics::global().set_enabled(false);

    // The structured logger's primitive cost: a suppressed (below
    // threshold) record and a formatted one against a sink writer.
    p7_obs::log::set_format(p7_obs::log::Format::Logfmt);
    p7_obs::log::set_max_level(p7_obs::log::Level::Warn);
    c.bench_function("obs_log_suppressed", |b| {
        b.iter(|| {
            p7_obs::log_debug!("bench", iteration = black_box(1u64); "suppressed record");
        });
    });
}

fn bench_registry_primitives(c: &mut Criterion) {
    let registry = p7_obs::metrics::Registry::new();
    let counter = registry.counter("bench_ops_total", "bench counter");
    static BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0];
    let histogram = registry.histogram("bench_obs", "bench histogram", BOUNDS);
    c.bench_function("obs_counter_inc", |b| {
        b.iter(|| counter.inc());
    });
    c.bench_function("obs_histogram_observe", |b| {
        b.iter(|| histogram.observe(black_box(3.0)));
    });
    registry.set_enabled(false);
    c.bench_function("obs_counter_inc_disabled", |b| {
        b.iter(|| counter.inc());
    });
}

criterion_group!(
    benches,
    bench_tick_disabled,
    bench_tick_metrics,
    bench_tick_metrics_and_trace,
    bench_tick_full_observability,
    bench_recorder_and_logger,
    bench_registry_primitives
);
criterion_main!(benches);
