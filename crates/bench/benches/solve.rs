//! Benchmarks of the batched SoA steady-state solver.
//!
//! `solve_batch` is the tick hot path: one 32 ms firmware window of a
//! dual-socket server, both sockets' voltage lanes solved by a single
//! [`p7_sim::SolveBatch`] sweep with warm seeds from the previous
//! window. This is the number EXPERIMENTS.md quotes for the per-tick
//! cost, and the one CI's bench-regression smoke times.
//!
//! With the `scalar-oracle` feature enabled, `solve_scalar_oracle`
//! times the retained one-lane-at-a-time solver on the same workload —
//! the differential baseline the SoA refactor is measured against.
//!
//! The `group_solve_*` family measures the lane-width question behind
//! the fleet engine and the sweep workers: the same eight busy servers
//! run for the same windows, either solo (each through its own
//! `SolveBatch<2>` — the pre-group worker path) or grouped through
//! `run_group` at 4, 8 and 16 lanes. `group_solve_lanes16_remainder`
//! runs five servers through 16 lanes so the cost of masked tail lanes
//! at non-multiple group sizes is measured, not assumed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use p7_control::GuardbandMode;
use p7_sim::{run_group, Assignment, ServerConfig, Simulation};
use p7_workloads::Catalog;

/// A simulation with both sockets busy: a borrowed-core placement runs
/// threads on socket 0 and socket 1, so every tick solves two occupied
/// lanes (the worst-case batch for the 2-socket server).
fn busy_server() -> Simulation {
    let w = Catalog::power7plus().get("raytrace").unwrap().clone();
    let assignment = Assignment::borrowed(&w, 8).unwrap();
    let mut sim = Simulation::new(
        ServerConfig::power7plus(1),
        assignment,
        GuardbandMode::Undervolt,
    )
    .unwrap();
    // Settle the DPLLs and seed the warm starts before timing.
    for _ in 0..10 {
        sim.tick();
    }
    sim
}

fn bench_solve_batch(c: &mut Criterion) {
    let mut sim = busy_server();
    c.bench_function("solve_batch", |b| {
        b.iter(|| black_box(sim.tick()));
    });
}

/// `n` busy two-socket servers with distinct silicon seeds — the shape a
/// fleet shard-epoch hands to `run_group`.
fn busy_fleet(n: usize) -> Vec<Simulation> {
    let w = Catalog::power7plus().get("raytrace").unwrap().clone();
    (0..n)
        .map(|i| {
            let assignment = Assignment::borrowed(&w, 8).unwrap();
            let mut sim = Simulation::new(
                ServerConfig::power7plus(i as u64 + 1),
                assignment,
                GuardbandMode::Undervolt,
            )
            .unwrap();
            for _ in 0..10 {
                sim.tick();
            }
            sim
        })
        .collect()
}

const GROUP_SERVERS: usize = 8;
const GROUP_WINDOWS: usize = 8;

fn bench_group_width<const LANES: usize>(c: &mut Criterion, name: &str, servers: usize) {
    let mut sims = busy_fleet(servers);
    c.bench_function(name, |b| {
        b.iter(|| {
            let mut refs: Vec<&mut Simulation> = sims.iter_mut().collect();
            black_box(run_group::<LANES>(&mut refs, GROUP_WINDOWS, 0))
        });
    });
}

fn bench_group_lanes(c: &mut Criterion) {
    // Per-server baseline: each server solved alone through its own
    // SolveBatch<2>, the pre-group sweep-worker path.
    let mut sims = busy_fleet(GROUP_SERVERS);
    c.bench_function("group_solve_solo", |b| {
        b.iter(|| {
            for sim in sims.iter_mut() {
                black_box(sim.run(GROUP_WINDOWS, 0));
            }
        });
    });
    bench_group_width::<4>(c, "group_solve_lanes4", GROUP_SERVERS);
    bench_group_width::<8>(c, "group_solve_lanes8", GROUP_SERVERS);
    bench_group_width::<16>(c, "group_solve_lanes16", GROUP_SERVERS);
    bench_group_width::<16>(c, "group_solve_lanes16_remainder", 5);
}

fn bench_solve_scalar_oracle(c: &mut Criterion) {
    #[cfg(feature = "scalar-oracle")]
    {
        let mut sim = busy_server();
        sim.set_scalar_oracle(true);
        c.bench_function("solve_scalar_oracle", |b| {
            b.iter(|| black_box(sim.tick()));
        });
    }
    #[cfg(not(feature = "scalar-oracle"))]
    let _ = c;
}

criterion_group!(
    benches,
    bench_solve_batch,
    bench_group_lanes,
    bench_solve_scalar_oracle
);
criterion_main!(benches);
