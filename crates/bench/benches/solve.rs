//! Benchmarks of the batched SoA steady-state solver.
//!
//! `solve_batch` is the tick hot path: one 32 ms firmware window of a
//! dual-socket server, both sockets' voltage lanes solved by a single
//! [`p7_sim::SolveBatch`] sweep with warm seeds from the previous
//! window. This is the number EXPERIMENTS.md quotes for the per-tick
//! cost, and the one CI's bench-regression smoke times.
//!
//! With the `scalar-oracle` feature enabled, `solve_scalar_oracle`
//! times the retained one-lane-at-a-time solver on the same workload —
//! the differential baseline the SoA refactor is measured against.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use p7_control::GuardbandMode;
use p7_sim::{Assignment, ServerConfig, Simulation};
use p7_workloads::Catalog;

/// A simulation with both sockets busy: a borrowed-core placement runs
/// threads on socket 0 and socket 1, so every tick solves two occupied
/// lanes (the worst-case batch for the 2-socket server).
fn busy_server() -> Simulation {
    let w = Catalog::power7plus().get("raytrace").unwrap().clone();
    let assignment = Assignment::borrowed(&w, 8).unwrap();
    let mut sim = Simulation::new(
        ServerConfig::power7plus(1),
        assignment,
        GuardbandMode::Undervolt,
    )
    .unwrap();
    // Settle the DPLLs and seed the warm starts before timing.
    for _ in 0..10 {
        sim.tick();
    }
    sim
}

fn bench_solve_batch(c: &mut Criterion) {
    let mut sim = busy_server();
    c.bench_function("solve_batch", |b| {
        b.iter(|| black_box(sim.tick()));
    });
}

fn bench_solve_scalar_oracle(c: &mut Criterion) {
    #[cfg(feature = "scalar-oracle")]
    {
        let mut sim = busy_server();
        sim.set_scalar_oracle(true);
        c.bench_function("solve_scalar_oracle", |b| {
            b.iter(|| black_box(sim.tick()));
        });
    }
    #[cfg(not(feature = "scalar-oracle"))]
    let _ = c;
}

criterion_group!(benches, bench_solve_batch, bench_solve_scalar_oracle);
criterion_main!(benches);
