//! One criterion benchmark per paper figure: times a reduced-size version
//! of each figure's experiment pipeline, so regressions in any figure's
//! end-to-end cost are caught. (The full-size regeneration binaries live
//! in `src/bin/fig*.rs`.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ags_core::{LoadlineBorrowing, MipsFrequencyPredictor};
use p7_control::{GuardbandMode, VoltFreqCurve};
use p7_sensors::CpmBank;
use p7_sim::{Assignment, Experiment};
use p7_types::{MegaHertz, Volts};
use p7_workloads::{co_runner, Catalog, CoRunnerClass, WebSearch};

/// A short-but-settled experiment runner shared by the figure benches.
fn exp() -> Experiment {
    Experiment::power7plus(1).with_ticks(10, 5)
}

fn fig03_core_scaling(c: &mut Criterion) {
    let catalog = Catalog::power7plus();
    let w = catalog.get("raytrace").unwrap().clone();
    c.bench_function("fig03_power_edp_one_point", |b| {
        b.iter(|| {
            let a = Assignment::single_socket(&w, 4).unwrap();
            let st = exp().run(&a, GuardbandMode::StaticGuardband).unwrap();
            let uv = exp().run(&a, GuardbandMode::Undervolt).unwrap();
            black_box((st.edp, uv.edp))
        });
    });
}

fn fig04_overclock(c: &mut Criterion) {
    let catalog = Catalog::power7plus();
    let w = catalog.get("lu_cb").unwrap().clone();
    c.bench_function("fig04_boost_one_point", |b| {
        b.iter(|| {
            let a = Assignment::single_socket(&w, 4).unwrap();
            black_box(exp().run(&a, GuardbandMode::Overclock).unwrap())
        });
    });
}

fn fig05_heterogeneity(c: &mut Criterion) {
    let catalog = Catalog::power7plus();
    let workloads: Vec<_> = catalog.core_scaling_set().into_iter().cloned().collect();
    c.bench_function("fig05_five_workloads_one_count", |b| {
        b.iter(|| {
            for w in &workloads {
                let a = Assignment::single_socket(w, 2).unwrap();
                black_box(exp().run(&a, GuardbandMode::Undervolt).unwrap());
            }
        });
    });
}

fn fig06_cpm_sweep(c: &mut Criterion) {
    let bank = CpmBank::with_seed(1);
    let curve = VoltFreqCurve::power7plus();
    c.bench_function("fig06_cpm_voltage_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for mv in (940..=1220).step_by(20) {
                let v = Volts::from_millivolts(f64::from(mv));
                let f = MegaHertz(4200.0);
                let margin = v - curve.v_circuit(f);
                for r in bank.read_all(&[margin; 8], &[f; 8]) {
                    acc += u32::from(r.value());
                }
            }
            black_box(acc)
        });
    });
}

fn fig07_fig09_drop_decomposition(c: &mut Criterion) {
    let catalog = Catalog::power7plus();
    let w = catalog.get("vips").unwrap().clone();
    c.bench_function("fig07_09_drop_decomposition_one_point", |b| {
        b.iter(|| {
            let a = Assignment::single_socket(&w, 6).unwrap();
            let run = exp().run(&a, GuardbandMode::StaticGuardband).unwrap();
            black_box(run.summary.socket0().drop[0])
        });
    });
}

fn fig10_scatter_point(c: &mut Criterion) {
    let catalog = Catalog::power7plus();
    let w = catalog.get("gcc").unwrap().clone();
    c.bench_function("fig10_one_scatter_workload", |b| {
        b.iter(|| {
            let a = Assignment::single_socket(&w, 8).unwrap();
            let st = exp().run(&a, GuardbandMode::StaticGuardband).unwrap();
            let uv = exp().run(&a, GuardbandMode::Undervolt).unwrap();
            black_box((
                st.summary.socket0().core0_passive_drop(),
                uv.summary.socket0().undervolt,
            ))
        });
    });
}

fn fig12_13_14_borrowing(c: &mut Criterion) {
    let catalog = Catalog::power7plus();
    let w = catalog.get("raytrace").unwrap().clone();
    let lb = LoadlineBorrowing::new(exp());
    c.bench_function("fig12_14_borrowing_evaluation", |b| {
        b.iter(|| black_box(lb.evaluate(&w, 8).unwrap()));
    });
}

fn fig15_colocation(c: &mut Criterion) {
    let catalog = Catalog::power7plus();
    let cm = catalog.get("coremark").unwrap().clone();
    let lu = catalog.get("lu_cb").unwrap().clone();
    c.bench_function("fig15_colocation_frequency", |b| {
        b.iter(|| {
            let a = Assignment::colocated(&cm, &lu, 7).unwrap();
            black_box(exp().run(&a, GuardbandMode::Overclock).unwrap())
        });
    });
}

fn fig16_predictor_training(c: &mut Criterion) {
    let catalog = Catalog::power7plus();
    let subset = ["mcf", "radix", "gcc", "raytrace", "swaptions", "povray"];
    c.bench_function("fig16_predictor_training_subset", |b| {
        b.iter(|| {
            let runner = exp();
            let mut data = Vec::new();
            for name in subset {
                let w = catalog.get(name).unwrap();
                let (mips, freq) = ags_core::predictor::measure_point(&runner, w).unwrap();
                data.push((mips, freq.0));
            }
            black_box(MipsFrequencyPredictor::fit(&data).unwrap())
        });
    });
}

fn fig17_qos(c: &mut Criterion) {
    let ws = WebSearch::power7plus();
    let catalog = Catalog::power7plus();
    let profile = catalog.get("websearch").unwrap().clone();
    let heavy = co_runner(CoRunnerClass::Heavy);
    c.bench_function("fig17_qos_one_class", |b| {
        b.iter(|| {
            let a = Assignment::colocated(&profile, &heavy, 7).unwrap();
            let o = exp().run(&a, GuardbandMode::Overclock).unwrap();
            black_box(ws.p90_windows(o.summary.sockets[0].avg_core_freq[0], 30, 3))
        });
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig03_core_scaling,
        fig04_overclock,
        fig05_heterogeneity,
        fig06_cpm_sweep,
        fig07_fig09_drop_decomposition,
        fig10_scatter_point,
        fig12_13_14_borrowing,
        fig15_colocation,
        fig16_predictor_training,
        fig17_qos
);
criterion_main!(figures);
