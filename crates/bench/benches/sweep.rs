//! Benchmarks for the parallel sweep engine against the seed's serial
//! per-binary loops.
//!
//! The "seed path" bench reproduces what the pre-engine figure binaries
//! did per grid cell: re-run the static baseline alongside every adaptive
//! mode (`improvement_vs_static` style), with no memoization and no
//! sharing between figures. The engine benches run the same grid through
//! `SweepEngine` — cold (private cache) and warm (second sweep over a
//! populated cache). The cold/warm pair is the number EXPERIMENTS.md
//! quotes for the memoization speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use p7_control::GuardbandMode;
use p7_sim::sweep::SolveCache;
use p7_sim::{Assignment, DurableOptions, Experiment, SweepEngine, SweepRunOptions, SweepSpec};
use p7_workloads::Catalog;

const WORKLOADS: [&str; 3] = ["raytrace", "lu_cb", "mcf"];
const CORES: [usize; 3] = [2, 4, 8];

fn bench_spec() -> SweepSpec {
    SweepSpec::new(
        WORKLOADS.iter().map(|s| (*s).to_owned()).collect(),
        CORES.to_vec(),
    )
    .with_ticks(10, 5)
}

fn seed_serial_path(c: &mut Criterion) {
    let catalog = Catalog::power7plus();
    c.bench_function("sweep_seed_serial_path", |b| {
        b.iter(|| {
            // The old loops: per cell, each adaptive mode re-ran its own
            // static baseline, and nothing was shared across cells.
            let mut acc = 0.0;
            for name in WORKLOADS {
                let w = catalog.get(name).unwrap();
                for cores in CORES {
                    let spec = bench_spec();
                    let exp = Experiment::power7plus(42)
                        .with_ticks(spec.measure_ticks, spec.warmup_ticks);
                    let a = Assignment::single_socket(w, cores).unwrap();
                    for mode in [GuardbandMode::Undervolt, GuardbandMode::Overclock] {
                        let st = exp.run(&a, GuardbandMode::StaticGuardband).unwrap();
                        let ad = exp.run(&a, mode).unwrap();
                        acc += st.chip_power().0 - ad.chip_power().0;
                    }
                }
            }
            black_box(acc)
        });
    });
}

fn engine_cold(c: &mut Criterion) {
    let spec = bench_spec();
    c.bench_function("sweep_engine_cold", |b| {
        b.iter(|| {
            let engine = SweepEngine::with_cache(1, Arc::new(SolveCache::new()));
            black_box(engine.run(&spec).unwrap().stats.cache.misses)
        });
    });
}

fn engine_warm(c: &mut Criterion) {
    let spec = bench_spec();
    let engine = SweepEngine::with_cache(1, Arc::new(SolveCache::new()));
    engine.run(&spec).unwrap();
    c.bench_function("sweep_engine_warm", |b| {
        b.iter(|| black_box(engine.run(&spec).unwrap().stats.cache.hits));
    });
}

/// The campaign-scale grid the journal-overhead pair runs on: large
/// enough (1152 points) that the journal's fixed cost — one fsynced
/// manifest write per run — amortizes the way it does on a real
/// campaign, instead of dominating a micro sweep.
fn campaign_spec() -> SweepSpec {
    use p7_sim::Placement;
    SweepSpec::new(
        [
            "raytrace",
            "lu_cb",
            "mcf",
            "gcc",
            "bwaves",
            "namd",
            "ferret",
            "freqmine",
            "swaptions",
            "radix",
            "barnes",
            "fft",
            "hmmer",
            "sjeng",
            "milc",
            "povray",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect(),
        vec![1, 2, 3, 4, 5, 6, 7, 8],
    )
    .with_placements(vec![
        Placement::SingleSocket,
        Placement::Consolidated,
        Placement::Borrowed,
    ])
    .with_modes(vec![
        GuardbandMode::StaticGuardband,
        GuardbandMode::Undervolt,
        GuardbandMode::Overclock,
    ])
    .with_ticks(10, 5)
}

fn engine_campaign_warm(c: &mut Criterion) {
    let spec = campaign_spec();
    let engine = SweepEngine::with_cache(1, Arc::new(SolveCache::new()));
    engine.run(&spec).unwrap();
    c.bench_function("sweep_campaign_warm", |b| {
        b.iter(|| black_box(engine.run(&spec).unwrap().stats.cache.hits));
    });
}

fn engine_campaign_warm_journaled(c: &mut Criterion) {
    // The campaign-scale warm sweep with a fresh crash-consistent journal
    // per run: the delta against `sweep_campaign_warm` is the checkpoint
    // overhead EXPERIMENTS.md quotes. Memoization hits are not journaled
    // (they cost nothing to reproduce on resume), so a fully warm run
    // pays only the fixed manifest write.
    let spec = campaign_spec();
    let engine = SweepEngine::with_cache(1, Arc::new(SolveCache::new()));
    engine.run(&spec).unwrap();
    let base = std::env::temp_dir().join(format!("ags-bench-journal-{}", std::process::id()));
    std::fs::create_dir_all(&base).ok();
    let mut run = 0u64;
    c.bench_function("sweep_campaign_warm_journaled", |b| {
        b.iter(|| {
            // Each run needs a fresh journal directory; cleanup happens
            // once at the end so only journal writes land in the timing.
            run += 1;
            let dir = base.join(run.to_string());
            let options = SweepRunOptions {
                durable: DurableOptions::journaled(&dir),
                panic_injector: None,
            };
            let hits = engine
                .run_durable(&spec, &options)
                .unwrap()
                .stats
                .cache
                .hits;
            black_box(hits)
        });
    });
    std::fs::remove_dir_all(&base).ok();
}

criterion_group!(
    name = sweep;
    config = Criterion::default().sample_size(10);
    targets = seed_serial_path, engine_cold, engine_warm,
        engine_campaign_warm, engine_campaign_warm_journaled
);
criterion_main!(sweep);
