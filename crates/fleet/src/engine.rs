//! The fleet engine: thousands of simulated servers sharded across
//! workers, advanced through wide solver lanes, with deterministic
//! work-stealing.
//!
//! # Sharding
//!
//! The fleet is cut into contiguous *shards* of [`FleetSpec::shard_servers`]
//! servers. A shard is the unit of everything: worker scheduling, panic
//! quarantine, journal checkpoints, and — because its default size packs a
//! 16-lane [`SolveBatch`](p7_sim::SolveBatch) exactly — one wide-lane
//! kernel pass per epoch. Each shard's result is a pure function of
//! `(spec, shard index)`: demand is open-loop, per-server seeds and
//! tenants derive from the spec, and the memoized solve cache only ever
//! short-circuits work whose value is already determined. Workers
//! therefore share **no mutable state on the tick path**, and the merged
//! report is byte-identical at any `--jobs` and across any
//! interrupt/resume split.
//!
//! # Work stealing
//!
//! Shards are pre-partitioned into one contiguous range per worker, each
//! with its own atomic cursor. A worker drains its own range first —
//! preserving the sweep engine's cache-friendly contiguous claiming — and
//! only then walks the other ranges in a fixed rotation, `fetch_add`-ing
//! on their cursors. A steal moves *where* a shard is computed, never
//! *what* it computes, so load imbalance (a flash crowd concentrated in a
//! few epochs, a drained rack finishing instantly) costs idle time on one
//! worker instead of wall-clock on the campaign.

use crate::spec::FleetSpec;
use crate::telemetry;
use crate::traffic::CORES_PER_SERVER;
use ags_core::cluster::ClusterConfig;
use p7_control::GuardbandMode;
use p7_obs::trace;
use p7_sim::journal::{fnv64, OpenedJournal};
use p7_sim::sweep::{experiment_fingerprint, resolve_jobs, CacheStats};
use p7_sim::{
    run_group, Assignment, DurableOptions, Experiment, FailedPoint, JournalMode, Outcome,
    RetryPolicy, ServerConfig, SimError, Simulation, SolveCache,
};
use p7_types::{CORES_PER_SOCKET, NUM_SOCKETS};
use p7_workloads::{Catalog, ExecutionModel, WorkloadProfile};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Solver lanes per fleet group solve: the widest batch the SoA kernel
/// ships, fitting [`crate::spec::DEFAULT_SHARD_SERVERS`] two-socket
/// servers exactly.
pub const FLEET_GROUP_LANES: usize = 16;

/// The guardband mode every fleet server runs: the paper's adaptive
/// guardband (undervolted, CPM-protected) — the configuration whose
/// system-level efficiency the campaign is measuring.
pub const FLEET_MODE: GuardbandMode = GuardbandMode::Undervolt;

/// Decides which shards panic, for resilience tests (mirrors
/// `p7_sim::sweep::PanicInjector`).
pub type ShardPanicInjector = Arc<dyn Fn(usize) -> bool + Send + Sync>;

/// What the shard executor hands back: per-shard results in shard order
/// (`None` only for quarantined shards), the quarantine list, and the
/// steal count.
type ExecutorOutcome = (Vec<Option<ShardResult>>, Vec<FailedPoint>, u64);

/// One server's settled operating point for one epoch.
///
/// `threads == 0` marks a standby epoch (idle or draining): the server is
/// suspended, burns only standby power, and every simulated figure is
/// zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochOutcome {
    /// Threads the mapper placed on this server (0 = suspended).
    pub threads: usize,
    /// Mean Vdd power of both chips, watts (0 when suspended).
    pub chip_power_w: f64,
    /// Workload execution time at the settled frequency, seconds.
    pub exec_time_s: f64,
    /// Chip energy over the execution, joules.
    pub energy_j: f64,
    /// Energy-delay product, joule-seconds.
    pub edp: f64,
}

impl EpochOutcome {
    /// A suspended (idle or draining) epoch.
    #[must_use]
    pub fn standby() -> Self {
        EpochOutcome {
            threads: 0,
            chip_power_w: 0.0,
            exec_time_s: 0.0,
            energy_j: 0.0,
            edp: 0.0,
        }
    }

    /// Whether the server ran load this epoch.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.threads > 0
    }

    fn from_outcome(outcome: &Outcome, threads: usize) -> Self {
        EpochOutcome {
            threads,
            chip_power_w: outcome.total_power().0,
            exec_time_s: outcome.exec_time.0,
            energy_j: outcome.energy.0,
            edp: outcome.edp,
        }
    }
}

/// One server's full trajectory through the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerResult {
    /// Global server index.
    pub server: usize,
    /// The tenant workload pinned to this server.
    pub workload: String,
    /// One outcome per epoch, in epoch order.
    pub epochs: Vec<EpochOutcome>,
}

/// One shard's servers — the journal checkpoint unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardResult {
    /// Shard index in `0..spec.shards()`.
    pub shard: usize,
    /// The shard's servers, in global index order.
    pub servers: Vec<ServerResult>,
}

/// Run accounting: everything here is diagnostic (stderr), never part of
/// the deterministic report payload — steal counts and elapsed time
/// legitimately vary with worker count and machine.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Shards in the campaign.
    pub shards: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Shards claimed from another worker's range.
    pub steals: u64,
    /// Server-epochs that ran load.
    pub active_server_epochs: usize,
    /// Server-epochs spent suspended.
    pub standby_server_epochs: usize,
    /// Wall-clock of the whole run.
    pub elapsed_secs: f64,
    /// Solve-cache counters (hits across epochs are the fleet's main
    /// memoization win: traffic revisits operating points).
    pub cache: CacheStats,
}

/// Per-epoch fleet aggregates for the report table.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRollup {
    /// Epoch index.
    pub epoch: usize,
    /// Cluster thread demand offered by the traffic model.
    pub demand: usize,
    /// Servers running load.
    pub active_servers: usize,
    /// Reported servers suspended (idle or draining).
    pub standby_servers: usize,
    /// Threads actually placed (equals demand unless shards failed).
    pub threads: usize,
    /// Fleet wall power: chips + platform for active servers, standby
    /// power for suspended ones, watts.
    pub fleet_power_w: f64,
    /// Mean energy-delay product over active servers (0 if none).
    pub mean_edp: f64,
}

/// The merged outcome of a fleet campaign.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The spec that produced it.
    pub spec: FleetSpec,
    /// Every completed server, in global index order (servers of
    /// quarantined shards are absent).
    pub servers: Vec<ServerResult>,
    /// Shards quarantined after repeated panics.
    pub failed_shards: Vec<FailedPoint>,
    /// Diagnostic accounting (not part of the deterministic payload).
    pub stats: FleetStats,
}

/// The deterministic slice of a report, serialized by
/// [`FleetReport::results_json`].
#[derive(Serialize)]
struct ReportPayload {
    spec: FleetSpec,
    servers: Vec<ServerResult>,
    failed_shards: Vec<FailedPoint>,
}

impl FleetReport {
    /// Canonical JSON of the deterministic payload: spec, per-server
    /// trajectories and quarantined shards — everything except
    /// [`FleetStats`]. Byte-identical at any `--jobs` and across any
    /// interrupt/resume split; the jobs-invariance tests diff exactly
    /// this string.
    #[must_use]
    pub fn results_json(&self) -> String {
        serde::json::to_string(&ReportPayload {
            spec: self.spec.clone(),
            servers: self.servers.clone(),
            failed_shards: self.failed_shards.clone(),
        })
    }

    /// Per-epoch fleet aggregates, in epoch order.
    #[must_use]
    pub fn epoch_rollup(&self) -> Vec<EpochRollup> {
        let cluster = ClusterConfig::rack(self.spec.servers);
        (0..self.spec.epochs)
            .map(|epoch| {
                let mut active = 0usize;
                let mut standby = 0usize;
                let mut threads = 0usize;
                let mut power = 0.0f64;
                let mut edp_sum = 0.0f64;
                for server in &self.servers {
                    let e = &server.epochs[epoch];
                    if e.is_active() {
                        active += 1;
                        threads += e.threads;
                        power += e.chip_power_w + cluster.platform_power.0;
                        edp_sum += e.edp;
                    } else {
                        standby += 1;
                        power += cluster.standby_power.0;
                    }
                }
                EpochRollup {
                    epoch,
                    demand: self.spec.traffic.demand(self.spec.servers, epoch),
                    active_servers: active,
                    standby_servers: standby,
                    threads,
                    fleet_power_w: power,
                    mean_edp: if active > 0 {
                        edp_sum / active as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    }

    /// The human-readable per-epoch table (deterministic — safe for
    /// stdout diffing across worker counts).
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet: {} servers x {} epochs, traffic {}, seed {}\n",
            self.spec.servers,
            self.spec.epochs,
            self.spec.traffic.label(),
            self.spec.seed,
        ));
        out.push_str("epoch  demand  active  standby  threads  fleet_kw  mean_edp\n");
        for r in self.epoch_rollup() {
            out.push_str(&format!(
                "{:>5}  {:>6}  {:>6}  {:>7}  {:>7}  {:>8.3}  {:>8.4}\n",
                r.epoch,
                r.demand,
                r.active_servers,
                r.standby_servers,
                r.threads,
                r.fleet_power_w / 1000.0,
                r.mean_edp,
            ));
        }
        if !self.failed_shards.is_empty() {
            out.push_str(&format!(
                "quarantined shards: {}\n",
                self.failed_shards.len()
            ));
        }
        out
    }
}

/// Options for [`FleetEngine::run_durable`].
#[derive(Default)]
pub struct FleetRunOptions {
    /// Journal, cancellation and retry knobs (shared with sweeps).
    pub durable: DurableOptions,
    /// Panic injection for resilience tests.
    pub panic_injector: Option<ShardPanicInjector>,
}

/// One server's compiled identity: tenant workload, experiment runner and
/// cache fingerprint, all pure functions of `(spec.seed, server index)`.
struct Tenant {
    workload: WorkloadProfile,
    experiment: Experiment,
    experiment_fp: u64,
}

/// The compiled campaign: per-server tenants plus the spec.
struct FleetContext {
    spec: FleetSpec,
    tenants: Vec<Tenant>,
}

/// Per-worker scratch. Rebuilt from `Default` after a caught panic, since
/// the unwound solve may have left it mid-use.
#[derive(Default)]
struct FleetScratch {
    probe: Vec<Option<Arc<Outcome>>>,
}

/// What one shard's isolated attempt loop produced (mirrors the sweep
/// executor's verdicts).
enum ShardSolved {
    /// Solved; the flag is journal-worthiness (`false` = every epoch was
    /// a cache hit, free to reproduce, so checkpointing buys nothing).
    Done(ShardResult, bool),
    /// A hard configuration error — retries cannot help.
    Hard(SimError),
    /// Quarantined after the retry budget.
    Quarantined(FailedPoint),
}

/// The fleet campaign runner: shards servers across `jobs` workers and
/// advances each shard through [`FLEET_GROUP_LANES`]-wide solver batches.
pub struct FleetEngine {
    jobs: usize,
    cache: Arc<SolveCache>,
}

impl FleetEngine {
    /// An engine sharing the process-wide solve cache. `jobs == 0` means
    /// one worker per available core.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        FleetEngine::with_cache(jobs, SolveCache::global())
    }

    /// An engine with an explicit cache (tests, isolation).
    #[must_use]
    pub fn with_cache(jobs: usize, cache: Arc<SolveCache>) -> Self {
        FleetEngine {
            jobs: resolve_jobs(jobs),
            cache,
        }
    }

    /// The resolved worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs a campaign in memory (no journal).
    ///
    /// # Errors
    ///
    /// As [`FleetEngine::run_durable`].
    pub fn run(&self, spec: &FleetSpec) -> Result<FleetReport, SimError> {
        self.run_durable(spec, &FleetRunOptions::default())
    }

    /// Runs a campaign with the durability contract: per-shard panic
    /// isolation with retries and quarantine, resume (journaled shards
    /// are not re-run), incremental checkpoints and cooperative
    /// cancellation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a degenerate spec, the
    /// lowest-indexed hard error a shard raised, [`SimError::Journal`]
    /// when checkpointing fails, or [`SimError::Interrupted`] when the
    /// cancel token fired (completed shards are already flushed).
    pub fn run_durable(
        &self,
        spec: &FleetSpec,
        options: &FleetRunOptions,
    ) -> Result<FleetReport, SimError> {
        let started = Instant::now();
        let ctx = self.compile(spec)?;
        let shards = spec.shards();

        let opened = if matches!(options.durable.journal, JournalMode::Off) {
            OpenedJournal {
                journal: None,
                entries: Vec::new(),
                skipped_segments: 0,
            }
        } else {
            options
                .durable
                .journal
                .open_with::<ShardResult>(&spec.manifest(), options.durable.fs.clone())?
        };
        // The manifest fingerprint pins the spec, so a recovered shard
        // that disagrees with the spec's geometry means on-disk
        // corruption that slipped past the segment checksums.
        for (idx, result) in &opened.entries {
            if *idx >= shards
                || result.shard != *idx
                || result.servers.len() != spec.shard_range(*idx).len()
            {
                return Err(SimError::Journal {
                    reason: format!("recovered shard {idx} does not match the spec's fleet"),
                });
            }
        }

        let (results, failed, steals) = self.run_shards(&ctx, opened, options)?;

        let mut servers = Vec::with_capacity(spec.servers);
        for shard in results.into_iter().flatten() {
            servers.extend(shard.servers);
        }
        let (active, standby) = servers
            .iter()
            .flat_map(|s| &s.epochs)
            .fold((0, 0), |(a, i), e| {
                if e.is_active() {
                    (a + 1, i)
                } else {
                    (a, i + 1)
                }
            });

        Ok(FleetReport {
            spec: spec.clone(),
            servers,
            failed_shards: failed,
            stats: FleetStats {
                shards,
                jobs: self.jobs.min(shards.max(1)),
                steals,
                active_server_epochs: active,
                standby_server_epochs: standby,
                elapsed_secs: started.elapsed().as_secs_f64(),
                cache: self.cache.counters(),
            },
        })
    }

    /// Expands the spec into per-server tenants. Seeds and tenant
    /// workloads derive from `spec.seed` with the same splitmix chain the
    /// sweep module uses for seed derivation, so every server gets
    /// distinct silicon and a stable tenant.
    fn compile(&self, spec: &FleetSpec) -> Result<FleetContext, SimError> {
        let catalog = Catalog::shared();
        spec.validate(catalog)?;
        let profiles: Vec<&WorkloadProfile> = catalog.iter().collect();
        let exec_model = ExecutionModel::power7plus();
        let tenants = (0..spec.servers)
            .map(|server| {
                let silicon = splitmix(spec.seed ^ server as u64);
                #[allow(clippy::cast_possible_truncation)]
                let slot = (splitmix(silicon) % profiles.len() as u64) as usize;
                let workload = profiles[slot].clone();
                let experiment =
                    Experiment::with_config(ServerConfig::power7plus(silicon), exec_model.clone())
                        .with_ticks(spec.measure_ticks, spec.warmup_ticks);
                let experiment_fp = experiment_fingerprint(&experiment);
                Tenant {
                    workload,
                    experiment,
                    experiment_fp,
                }
            })
            .collect();
        Ok(FleetContext {
            spec: spec.clone(),
            tenants,
        })
    }

    /// Solves one shard: every server's trajectory through every epoch.
    /// Cache misses of one epoch are batched through a single
    /// [`FLEET_GROUP_LANES`]-wide group solve. Returns the result plus
    /// its journal-worthiness (any epoch actually computed).
    fn solve_shard(
        &self,
        ctx: &FleetContext,
        shard: usize,
        scratch: &mut FleetScratch,
    ) -> Result<(ShardResult, bool), SimError> {
        let spec = &ctx.spec;
        let range = spec.shard_range(shard);
        let base = range.start;
        let mut servers: Vec<ServerResult> = range
            .clone()
            .map(|server| ServerResult {
                server,
                workload: ctx.tenants[server].workload.name().to_owned(),
                epochs: Vec::with_capacity(spec.epochs),
            })
            .collect();
        let mut journal_worthy = false;

        // (local index, threads, assignment, assignment fingerprint) of
        // the epoch's cache misses, group-solved below.
        let mut missing: Vec<(usize, usize, Assignment, u64)> = Vec::new();
        let mut sims: Vec<Simulation> = Vec::new();
        for epoch in 0..spec.epochs {
            missing.clear();
            for server in range.clone() {
                let local = server - base;
                let threads = offered_threads(spec, server, epoch);
                if threads == 0 {
                    telemetry::idle_server_epochs().inc();
                    servers[local].epochs.push(EpochOutcome::standby());
                    continue;
                }
                telemetry::server_epochs().inc();
                let tenant = &ctx.tenants[server];
                let assignment = place(&tenant.workload, threads)?;
                let assignment_fp = fnv64(serde::json::to_string(&assignment).as_bytes());
                self.cache.probe_lanes(
                    tenant.experiment_fp,
                    assignment_fp,
                    &[FLEET_MODE],
                    spec.measure_ticks,
                    spec.warmup_ticks,
                    0,
                    &mut scratch.probe,
                );
                match scratch.probe[0].take() {
                    Some(hit) => servers[local]
                        .epochs
                        .push(EpochOutcome::from_outcome(&hit, threads)),
                    None => {
                        // Placeholder, replaced after the group solve.
                        servers[local].epochs.push(EpochOutcome::standby());
                        missing.push((local, threads, assignment, assignment_fp));
                    }
                }
            }
            if missing.is_empty() {
                continue;
            }

            sims.clear();
            for (local, _, assignment, _) in &missing {
                sims.push(
                    ctx.tenants[base + local]
                        .experiment
                        .build_simulation(assignment, FLEET_MODE)?,
                );
            }
            let lanes_per_group = FLEET_GROUP_LANES / NUM_SOCKETS;
            for group in sims.chunks(lanes_per_group) {
                #[allow(clippy::cast_precision_loss)]
                telemetry::group_lanes().observe((group.len() * NUM_SOCKETS) as f64);
            }
            let mut refs: Vec<&mut Simulation> = sims.iter_mut().collect();
            let summaries =
                run_group::<FLEET_GROUP_LANES>(&mut refs, spec.measure_ticks, spec.warmup_ticks);

            for ((local, threads, assignment, assignment_fp), summary) in
                missing.drain(..).zip(summaries)
            {
                let tenant = &ctx.tenants[base + local];
                let outcome = tenant.experiment.outcome_from_summary(&assignment, summary);
                let (solved, computed) = self.cache.solve_with_status(
                    tenant.experiment_fp,
                    assignment_fp,
                    FLEET_MODE,
                    spec.measure_ticks,
                    spec.warmup_ticks,
                    0,
                    || Ok(outcome),
                )?;
                journal_worthy |= computed;
                servers[local].epochs[epoch] = EpochOutcome::from_outcome(&solved, threads);
            }
        }

        Ok((ShardResult { shard, servers }, journal_worthy))
    }

    /// The durable shard executor: per-worker contiguous ranges with
    /// deterministic work stealing, panic isolation, journal checkpoints
    /// and cooperative cancellation. Results merge by shard index, so the
    /// outcome is identical at any worker count.
    #[allow(clippy::too_many_lines)]
    fn run_shards(
        &self,
        ctx: &FleetContext,
        opened: OpenedJournal<ShardResult>,
        options: &FleetRunOptions,
    ) -> Result<ExecutorOutcome, SimError> {
        let n = ctx.spec.shards();
        let jobs = self.jobs.min(n.max(1));
        let opts = &options.durable;
        let OpenedJournal {
            journal: mut journal_store,
            entries: completed,
            ..
        } = opened;
        let mut journal = journal_store.as_mut();
        let checkpoint_every = opts.checkpoint_interval();
        let done: HashSet<usize> = completed.iter().map(|(idx, _)| *idx).collect();

        let mut results: Vec<Option<ShardResult>> = (0..n).map(|_| None).collect();
        let mut failed: Vec<FailedPoint> = Vec::new();
        let mut first_error: Option<(usize, SimError)> = None;
        let mut pending: Vec<(usize, ShardResult)> = Vec::new();
        let mut journal_error: Option<SimError> = None;
        let steals = AtomicU64::new(0);

        // One place handles every solved shard, serial or parallel:
        // merge into the index slot, stage journal entries, flush full
        // segments (the sweep executor's absorb contract).
        let mut absorb = |idx: usize,
                          solved: ShardSolved,
                          results: &mut Vec<Option<ShardResult>>,
                          failed: &mut Vec<FailedPoint>,
                          first_error: &mut Option<(usize, SimError)>,
                          pending: &mut Vec<(usize, ShardResult)>,
                          journal_error: &mut Option<SimError>| {
            match solved {
                ShardSolved::Done(value, journal_worthy) => {
                    if journal_worthy && journal.is_some() && journal_error.is_none() {
                        pending.push((idx, value.clone()));
                    }
                    results[idx] = Some(value);
                }
                ShardSolved::Hard(e) => {
                    if first_error.as_ref().is_none_or(|(lowest, _)| idx < *lowest) {
                        *first_error = Some((idx, e));
                    }
                }
                ShardSolved::Quarantined(point) => failed.push(point),
            }
            if pending.len() >= checkpoint_every {
                if let Some(j) = journal.as_deref_mut() {
                    if let Err(e) = j.append(pending) {
                        *journal_error = Some(e);
                        opts.cancel.cancel();
                    }
                }
                pending.clear();
            }
        };

        let solve_one = |scratch: &mut FleetScratch, shard: usize| {
            if let Some(inject) = &options.panic_injector {
                assert!(!inject(shard), "injected panic at fleet shard {shard}");
            }
            self.solve_shard(ctx, shard, scratch)
        };

        if jobs <= 1 {
            let mut scratch = FleetScratch::default();
            for shard in 0..n {
                if opts.cancel.is_cancelled() {
                    break;
                }
                if done.contains(&shard) {
                    continue;
                }
                telemetry::shards_claimed().inc();
                let solved = {
                    let span = trace::span("fleet_shard", shard as u64);
                    let _ctx = span.push();
                    attempt_shard(&solve_one, &mut scratch, shard, &opts.retry)
                };
                absorb(
                    shard,
                    solved,
                    &mut results,
                    &mut failed,
                    &mut first_error,
                    &mut pending,
                    &mut journal_error,
                );
            }
        } else {
            // Contiguous pre-partition: worker w owns shards
            // [w*n/jobs, (w+1)*n/jobs). Each range has its own cursor;
            // stealing is a fetch_add on someone else's.
            let cursors: Vec<AtomicUsize> =
                (0..jobs).map(|w| AtomicUsize::new(w * n / jobs)).collect();
            let ends: Vec<usize> = (0..jobs).map(|w| (w + 1) * n / jobs).collect();
            let (tx, rx) = mpsc::channel::<(usize, ShardSolved)>();
            // Workers inherit the coordinator's trace context (the
            // campaign root) so shard spans parent identically at any
            // worker count.
            let ctx = trace::current_context();
            std::thread::scope(|scope| {
                for w in 0..jobs {
                    let tx = tx.clone();
                    let (cursors, ends, done) = (&cursors, &ends, &done);
                    let (solve_one, steals, cancel) = (&solve_one, &steals, &opts.cancel);
                    let retry = &opts.retry;
                    scope.spawn(move || {
                        let _tctx = trace::push_context(ctx);
                        let mut scratch = FleetScratch::default();
                        let mut work = || {
                            // Own range first (delta 0), then the other
                            // ranges in a fixed rotation.
                            for delta in 0..jobs {
                                let victim = (w + delta) % jobs;
                                loop {
                                    if cancel.is_cancelled() {
                                        return;
                                    }
                                    let shard = cursors[victim].fetch_add(1, Ordering::Relaxed);
                                    if shard >= ends[victim] {
                                        break;
                                    }
                                    if done.contains(&shard) {
                                        continue;
                                    }
                                    telemetry::shards_claimed().inc();
                                    if delta != 0 {
                                        telemetry::shards_stolen().inc();
                                        steals.fetch_add(1, Ordering::Relaxed);
                                    }
                                    let solved = {
                                        let span = trace::span("fleet_shard", shard as u64);
                                        let _ctx = span.push();
                                        attempt_shard(solve_one, &mut scratch, shard, retry)
                                    };
                                    if tx.send((shard, solved)).is_err() {
                                        return;
                                    }
                                }
                            }
                        };
                        work();
                        // Scoped joins may return before TLS destructors
                        // run; flush the span ring here or the
                        // coordinator's collect can miss this worker.
                        trace::flush();
                    });
                }
                drop(tx);
                // The coordinator drains while workers run, so
                // checkpoints land as shards complete, not at the end.
                for (shard, solved) in rx {
                    absorb(
                        shard,
                        solved,
                        &mut results,
                        &mut failed,
                        &mut first_error,
                        &mut pending,
                        &mut journal_error,
                    );
                }
            });
        }

        // Final flush: whatever completed since the last full segment.
        if journal_error.is_none() {
            if let Some(j) = journal.as_deref_mut() {
                if let Err(e) = j.append(&pending) {
                    journal_error = Some(e);
                }
            }
        }
        if let Some(e) = journal_error {
            return Err(e);
        }
        if let Some((_, e)) = first_error {
            return Err(e);
        }
        if opts.cancel.is_cancelled() {
            return Err(SimError::Interrupted {
                journal: journal.map(|j| j.dir().display().to_string()),
            });
        }

        // Resumed entries fill their slots last, so a fresh solve of the
        // same index (impossible, but harmless) is not overwritten.
        for (idx, value) in completed {
            if idx < n && results[idx].is_none() {
                results[idx] = Some(value);
            }
        }
        failed.sort_unstable_by_key(|p| p.index);
        Ok((results, failed, steals.load(Ordering::Relaxed)))
    }
}

/// Threads the consolidation-first mapper places on `server` at `epoch`:
/// non-draining servers fill up in index order, 16 threads each, until
/// the epoch's demand is exhausted. Draining servers take nothing.
#[must_use]
pub fn offered_threads(spec: &FleetSpec, server: usize, epoch: usize) -> usize {
    let traffic = spec.traffic;
    let wave = traffic.drain_wave(spec.servers, epoch);
    if wave.contains(&server) {
        return 0;
    }
    // Consolidation rank among non-draining servers: the drain wave is
    // contiguous, so ranks need one subtraction, not a scan.
    let drained_below = server.min(wave.end).saturating_sub(wave.start.min(server));
    let rank = server - drained_below;
    traffic
        .demand(spec.servers, epoch)
        .saturating_sub(rank * CORES_PER_SERVER)
        .min(CORES_PER_SERVER)
}

/// Places `threads` on one server: consolidated onto socket 0 (socket 1
/// power-gated) while they fit, balanced across both sockets beyond.
fn place(workload: &WorkloadProfile, threads: usize) -> Result<Assignment, SimError> {
    if threads <= CORES_PER_SOCKET {
        Assignment::consolidated(workload, threads)
    } else {
        Assignment::balanced_server(workload, threads)
    }
}

/// One shard's isolated attempt loop: `catch_unwind` around the solve,
/// bounded backoff retries with scratch rebuilt after each caught panic,
/// quarantine after the final one (mirrors the sweep executor).
fn attempt_shard<F>(
    f: &F,
    scratch: &mut FleetScratch,
    shard: usize,
    retry: &RetryPolicy,
) -> ShardSolved
where
    F: Fn(&mut FleetScratch, usize) -> Result<(ShardResult, bool), SimError>,
{
    let attempts = retry.max_attempts.max(1);
    let mut reason = String::new();
    for attempt in 1..=attempts {
        match catch_unwind(AssertUnwindSafe(|| f(scratch, shard))) {
            Ok(Ok((value, journal_worthy))) => return ShardSolved::Done(value, journal_worthy),
            Ok(Err(e)) => return ShardSolved::Hard(e),
            Err(payload) => {
                reason = panic_message(payload.as_ref());
                *scratch = FleetScratch::default();
                if attempt < attempts {
                    std::thread::sleep(retry.backoff_before(attempt));
                }
            }
        }
    }
    ShardSolved::Quarantined(FailedPoint {
        index: shard,
        attempts,
        reason,
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// SplitMix64 — the same mixer the sweep module derives seeds with, so
/// fleet server seeds are as decorrelated as sweep point seeds.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficModel;
    use p7_sim::DEFAULT_CACHE_CAPACITY;
    use std::path::PathBuf;

    fn tiny_spec() -> FleetSpec {
        let mut spec = FleetSpec::smoke().with_scale(12, 4);
        spec.measure_ticks = 3;
        spec.warmup_ticks = 2;
        spec.shard_servers = 2;
        spec
    }

    fn fresh_engine(jobs: usize) -> FleetEngine {
        FleetEngine::with_cache(
            jobs,
            Arc::new(SolveCache::with_capacity(DEFAULT_CACHE_CAPACITY)),
        )
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("p7-fleet-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mapper_consolidates_demand_first() {
        for traffic in TrafficModel::all() {
            let spec = FleetSpec::smoke().with_scale(40, 20).with_traffic(traffic);
            for epoch in 0..spec.epochs {
                let offered: Vec<usize> = (0..spec.servers)
                    .map(|s| offered_threads(&spec, s, epoch))
                    .collect();
                // Placed threads equal demand exactly.
                let demand = traffic.demand(spec.servers, epoch);
                assert_eq!(offered.iter().sum::<usize>(), demand, "{traffic:?}@{epoch}");
                // Draining servers take nothing.
                for (s, &t) in offered.iter().enumerate() {
                    assert!(t <= CORES_PER_SERVER);
                    if traffic.draining(spec.servers, s, epoch) {
                        assert_eq!(t, 0, "drained server {s} got load");
                    }
                }
                // Consolidation-first: among non-draining servers, full
                // servers strictly precede empty ones.
                let active: Vec<usize> = (0..spec.servers)
                    .filter(|&s| !traffic.draining(spec.servers, s, epoch))
                    .map(|s| offered[s])
                    .collect();
                let first_gap = active.iter().position(|&t| t < CORES_PER_SERVER);
                if let Some(gap) = first_gap {
                    assert!(active[gap + 1..].iter().all(|&t| t == 0));
                }
                // The closed-form rank matches a brute-force scan.
                for (s, &got) in offered.iter().enumerate() {
                    if traffic.draining(spec.servers, s, epoch) {
                        continue;
                    }
                    let rank = (0..s)
                        .filter(|&p| !traffic.draining(spec.servers, p, epoch))
                        .count();
                    let expect = demand
                        .saturating_sub(rank * CORES_PER_SERVER)
                        .min(CORES_PER_SERVER);
                    assert_eq!(got, expect, "{traffic:?} s={s} e={epoch}");
                }
            }
        }
    }

    #[test]
    fn report_is_byte_identical_across_jobs_with_stealing() {
        let spec = tiny_spec();
        let solo = fresh_engine(1).run(&spec).unwrap().results_json();
        for jobs in [2, 5] {
            let report = fresh_engine(jobs).run(&spec).unwrap();
            assert_eq!(report.results_json(), solo, "jobs {jobs}");
        }
    }

    #[test]
    fn traffic_shapes_the_fleet_rollup() {
        let mut spec = tiny_spec().with_traffic(TrafficModel::RollingDeploy);
        spec.servers = 16;
        let report = fresh_engine(1).run(&spec).unwrap();
        let rollup = report.epoch_rollup();
        let cluster = ClusterConfig::rack(spec.servers);
        for r in &rollup {
            assert_eq!(r.active_servers + r.standby_servers, spec.servers);
            assert_eq!(r.threads, r.demand, "all demand placed");
            // Wall power bounds: every server at least standby, actives
            // add at least the platform overhead.
            let floor = r.active_servers as f64 * cluster.platform_power.0
                + r.standby_servers as f64 * cluster.standby_power.0;
            assert!(r.fleet_power_w > floor, "chips draw real power");
            assert!(r.mean_edp > 0.0);
        }
        // 60 % demand on 16 servers = 154 threads -> 10 active servers.
        assert_eq!(rollup[0].active_servers, 10);
        // The table renders one line per epoch.
        assert_eq!(report.table().lines().count(), 2 + spec.epochs);
    }

    #[test]
    fn cache_reuse_kicks_in_when_traffic_revisits_operating_points() {
        // Flash crowd: epochs 0, 1 and the late tail all sit at the
        // baseline demand, so each server revisits its baseline operating
        // point and the solve cache answers the repeats.
        let mut spec = tiny_spec().with_traffic(TrafficModel::FlashCrowd);
        spec.epochs = 8;
        let report = fresh_engine(1).run(&spec).unwrap();
        assert!(
            report.stats.cache.hits > 0,
            "repeated operating points should hit: {:?}",
            report.stats.cache
        );
        assert!(report.stats.standby_server_epochs > 0);
    }

    #[test]
    fn durable_fleet_resumes_without_recompute() {
        let spec = tiny_spec();
        let dir = tmp_dir("resume");
        let baseline = {
            let options = FleetRunOptions {
                durable: DurableOptions::journaled(&dir),
                ..FleetRunOptions::default()
            };
            fresh_engine(2).run_durable(&spec, &options).unwrap()
        };
        // Fresh engine, cold cache: every shard comes off the journal.
        let options = FleetRunOptions {
            durable: DurableOptions::resumed(&dir),
            ..FleetRunOptions::default()
        };
        let resumed = fresh_engine(2).run_durable(&spec, &options).unwrap();
        assert_eq!(resumed.results_json(), baseline.results_json());
        assert_eq!(
            resumed.stats.cache.misses, 0,
            "journaled shards must not re-simulate"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_run_reports_interrupted() {
        let spec = tiny_spec();
        let options = FleetRunOptions::default();
        options.durable.cancel.cancel();
        let err = fresh_engine(2).run_durable(&spec, &options).unwrap_err();
        assert!(matches!(err, SimError::Interrupted { .. }), "{err:?}");
    }

    #[test]
    fn panicking_shard_is_quarantined_not_fatal() {
        let spec = tiny_spec();
        let mut options = FleetRunOptions {
            panic_injector: Some(Arc::new(|shard| shard == 1)),
            ..FleetRunOptions::default()
        };
        options.durable.retry = RetryPolicy::no_retry();
        let report = fresh_engine(1).run_durable(&spec, &options).unwrap();
        assert_eq!(report.failed_shards.len(), 1);
        assert_eq!(report.failed_shards[0].index, 1);
        // Shard 1's two servers are absent; everything else reported.
        assert_eq!(report.servers.len(), spec.servers - spec.shard_servers);
        assert!(report
            .servers
            .iter()
            .all(|s| s.server != 2 && s.server != 3));
    }
}
