//! The fleet campaign specification: cluster size, horizon, traffic
//! shape and determinism parameters, serde-serializable so campaigns can
//! be journaled and resumed exactly like sweeps.

use crate::traffic::{TrafficModel, CORES_PER_SERVER};
use p7_sim::{CampaignManifest, SimError};
use p7_workloads::Catalog;
use serde::{Deserialize, Serialize};

/// Default servers per shard: one shard's sockets exactly fill a
/// 16-lane solve group, so a worker converges a whole shard-epoch in a
/// single kernel pass.
pub const DEFAULT_SHARD_SERVERS: usize = 8;

/// A complete fleet campaign description.
///
/// Everything a run depends on is in here; a [`FleetSpec`] plus the
/// workload catalog fully determines every number in the report, so a
/// campaign is byte-identical at any worker count and across any
/// interrupt/resume split.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Number of two-socket servers in the fleet.
    pub servers: usize,
    /// Control-plane epochs to simulate.
    pub epochs: usize,
    /// The open-loop demand shape.
    pub traffic: TrafficModel,
    /// Master seed: per-server silicon seeds and tenant assignment
    /// derive from it.
    pub seed: u64,
    /// Telemetry windows measured per active server-epoch.
    pub measure_ticks: usize,
    /// Warm-up windows discarded per active server-epoch.
    pub warmup_ticks: usize,
    /// Servers per shard — the unit of worker scheduling and stealing.
    pub shard_servers: usize,
}

impl FleetSpec {
    /// The full-scale campaign: a thousand servers over one diurnal
    /// period.
    #[must_use]
    pub fn power7plus() -> Self {
        FleetSpec {
            servers: 1000,
            epochs: 24,
            traffic: TrafficModel::Diurnal,
            seed: 42,
            measure_ticks: 12,
            warmup_ticks: 6,
            shard_servers: DEFAULT_SHARD_SERVERS,
        }
    }

    /// The shortened CI campaign: small fleet, flash-crowd traffic (the
    /// most state-diverse shape), few ticks.
    #[must_use]
    pub fn smoke() -> Self {
        FleetSpec {
            servers: 24,
            epochs: 6,
            traffic: TrafficModel::FlashCrowd,
            seed: 42,
            measure_ticks: 6,
            warmup_ticks: 3,
            shard_servers: DEFAULT_SHARD_SERVERS,
        }
    }

    /// Overrides the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides fleet size and horizon.
    #[must_use]
    pub fn with_scale(mut self, servers: usize, epochs: usize) -> Self {
        self.servers = servers;
        self.epochs = epochs;
        self
    }

    /// Overrides the traffic model.
    #[must_use]
    pub fn with_traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = traffic;
        self
    }

    /// Number of shards — the campaign's schedulable (and journaled)
    /// units.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.servers.div_ceil(self.shard_servers.max(1))
    }

    /// The global server-index range of shard `shard`.
    #[must_use]
    pub fn shard_range(&self, shard: usize) -> std::ops::Range<usize> {
        let per = self.shard_servers.max(1);
        let start = shard * per;
        start..(start + per).min(self.servers)
    }

    /// Validates the spec against the workload catalog.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an empty fleet, horizon,
    /// shard size or measurement window, or an empty catalog.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), SimError> {
        let invalid = |reason: &'static str| Err(SimError::InvalidConfig { reason });
        if self.servers == 0 {
            return invalid("fleet needs at least one server");
        }
        if self.epochs == 0 {
            return invalid("fleet needs at least one epoch");
        }
        if self.measure_ticks == 0 {
            return invalid("fleet needs at least one measured window per epoch");
        }
        if self.shard_servers == 0 {
            return invalid("fleet shards need at least one server");
        }
        if catalog.iter().next().is_none() {
            return invalid("workload catalog is empty");
        }
        Ok(())
    }

    /// Canonical JSON of the spec.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] for malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, SimError> {
        serde::json::from_str(text).map_err(|e| SimError::Spec {
            reason: format!("bad fleet spec JSON: {e}"),
        })
    }

    /// The journal manifest pinning this campaign.
    #[must_use]
    pub fn manifest(&self) -> CampaignManifest {
        CampaignManifest::new("fleet", self.seed, self.to_json())
    }

    /// Total thread capacity of the fleet.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.servers * CORES_PER_SERVER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        for spec in [
            FleetSpec::power7plus(),
            FleetSpec::smoke().with_seed(7),
            FleetSpec::smoke()
                .with_scale(3, 9)
                .with_traffic(TrafficModel::RollingDeploy),
        ] {
            let back = FleetSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(back, spec);
        }
        assert!(FleetSpec::from_json("{").is_err());
    }

    #[test]
    fn shards_partition_the_fleet() {
        let spec = FleetSpec::smoke().with_scale(21, 4);
        assert_eq!(spec.shards(), 3);
        let mut seen = Vec::new();
        for shard in 0..spec.shards() {
            seen.extend(spec.shard_range(shard));
        }
        assert_eq!(seen, (0..21).collect::<Vec<_>>());
        assert_eq!(spec.shard_range(2), 16..21, "tail shard is partial");
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let catalog = Catalog::power7plus();
        assert!(FleetSpec::smoke().validate(&catalog).is_ok());
        assert!(FleetSpec::smoke()
            .with_scale(0, 4)
            .validate(&catalog)
            .is_err());
        assert!(FleetSpec::smoke()
            .with_scale(4, 0)
            .validate(&catalog)
            .is_err());
        let mut zero_ticks = FleetSpec::smoke();
        zero_ticks.measure_ticks = 0;
        assert!(zero_ticks.validate(&catalog).is_err());
        let mut zero_shard = FleetSpec::smoke();
        zero_shard.shard_servers = 0;
        assert!(zero_shard.validate(&catalog).is_err());
    }

    #[test]
    fn manifest_pins_the_spec() {
        let m = FleetSpec::smoke().manifest();
        assert_eq!(m.kind, "fleet");
        assert_eq!(m.seed, 42);
        assert_eq!(
            FleetSpec::from_json(&m.spec_json).unwrap(),
            FleetSpec::smoke()
        );
    }
}
