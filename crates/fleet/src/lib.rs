//! Fleet-scale sharded simulation: from one POWER7+ server to thousands.
//!
//! The per-server simulator answers "what does adaptive guardbanding buy
//! *this* machine"; this crate answers the system-level question the paper
//! closes with — what it buys a *cluster*. A [`FleetSpec`] describes
//! thousands of two-socket servers, an open-loop [`TrafficModel`] (diurnal
//! load, a flash crowd, a rolling deploy) and a seed; the [`FleetEngine`]
//! advances every server through the campaign's epochs:
//!
//! * **Sharding** — servers are cut into contiguous shards, each solved by
//!   one worker with private scratch; nothing on the tick path is shared
//!   mutable state.
//! * **Wide lanes** — each shard-epoch's unsolved servers are packed into
//!   one 16-lane [`p7_sim::SolveBatch`] group solve
//!   ([`p7_sim::run_group`]), so the SoA kernel runs at full width instead
//!   of two lanes per server.
//! * **Work stealing** — idle workers claim whole shards from other
//!   workers' ranges in a fixed rotation. Stealing moves *where* a shard
//!   is computed, never *what*: reports are byte-identical at any
//!   `--jobs`.
//! * **Durability** — campaigns journal per-shard through the same
//!   crash-consistent [`p7_sim::Journal`] machinery as sweeps, and resume
//!   without recomputing.
//!
//! Demand is open-loop (a pure function of the epoch), per-server silicon
//! and tenants derive from the seed, and the memoized solve cache only
//! short-circuits already-determined work — which together make every
//! shard a pure function of `(spec, shard index)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod spec;
pub mod telemetry;
pub mod traffic;

pub use engine::{
    offered_threads, EpochOutcome, EpochRollup, FleetEngine, FleetReport, FleetRunOptions,
    FleetStats, ServerResult, ShardPanicInjector, ShardResult, FLEET_GROUP_LANES, FLEET_MODE,
};
pub use spec::{FleetSpec, DEFAULT_SHARD_SERVERS};
pub use traffic::TrafficModel;
