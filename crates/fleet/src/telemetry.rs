//! The fleet engine's metric families, as cached handles into the global
//! [`p7_obs`] registry — the same accessor idiom as `p7_sim::telemetry`.
//!
//! Shard scheduling families deserve one caveat: *which worker* claims or
//! steals a shard depends on thread timing, so `ags_fleet_shards_stolen_total`
//! is legitimately jobs-variant (it counts scheduling events, not results).
//! Everything the fleet *reports* stays byte-identical at any worker count;
//! only these scheduling counters (and `*_seconds` families elsewhere) see
//! the machine.

use p7_obs::metrics::{global, Counter, Histogram};
use std::sync::{Arc, OnceLock};

/// Bucket bounds for solver-lane occupancy per fleet group solve. A group
/// packs up to 8 two-socket servers into a 16-lane batch; low buckets mean
/// the cache already held most of the epoch's operating points.
pub const GROUP_LANES_BOUNDS: &[f64] = &[2.0, 4.0, 8.0, 12.0, 16.0];

macro_rules! counter_accessor {
    ($(#[$doc:meta])* $fn_name:ident, $name:literal, $help:literal) => {
        $(#[$doc])*
        pub fn $fn_name() -> &'static Arc<Counter> {
            static HANDLE: OnceLock<Arc<Counter>> = OnceLock::new();
            HANDLE.get_or_init(|| global().counter($name, $help))
        }
    };
}

macro_rules! histogram_accessor {
    ($(#[$doc:meta])* $fn_name:ident, $name:literal, $help:literal, $bounds:expr) => {
        $(#[$doc])*
        pub fn $fn_name() -> &'static Arc<Histogram> {
            static HANDLE: OnceLock<Arc<Histogram>> = OnceLock::new();
            HANDLE.get_or_init(|| global().histogram($name, $help, $bounds))
        }
    };
}

counter_accessor!(
    /// Shards claimed by fleet workers (from their own range or stolen).
    shards_claimed,
    "ags_fleet_shards_claimed_total",
    "Fleet shards claimed by workers, own-range and stolen combined"
);

counter_accessor!(
    /// Shards a worker took from another worker's range after draining its
    /// own. Jobs-variant by nature: stealing is a scheduling event.
    shards_stolen,
    "ags_fleet_shards_stolen_total",
    "Fleet shards claimed from another worker's range (work stealing)"
);

counter_accessor!(
    /// Server-epochs simulated or served from the solve cache.
    server_epochs,
    "ags_fleet_server_epochs_total",
    "Active fleet server-epochs resolved (simulated or cache-served)"
);

counter_accessor!(
    /// Server-epochs spent suspended (zero assigned threads or draining).
    idle_server_epochs,
    "ags_fleet_idle_server_epochs_total",
    "Fleet server-epochs spent in standby (idle or draining)"
);

histogram_accessor!(
    /// Solver lanes occupied per fleet group solve.
    group_lanes,
    "ags_fleet_group_lanes",
    "Solver lanes occupied per fleet group solve (2 per simulated server)",
    GROUP_LANES_BOUNDS
);

/// Touches every fleet metric family so exporters see the full schema
/// (zero-valued included) before any fleet campaign runs.
pub fn register_all() {
    let _ = shards_claimed();
    let _ = shards_stolen();
    let _ = server_epochs();
    let _ = idle_server_epochs();
    let _ = group_lanes();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_stable_handles() {
        register_all();
        let enabled_before = global().is_enabled();
        global().set_enabled(true);
        let before = shards_stolen().get();
        shards_stolen().inc();
        assert_eq!(shards_stolen().get(), before + 1);
        global().set_enabled(enabled_before);
        assert!(GROUP_LANES_BOUNDS.windows(2).all(|w| w[0] < w[1]));
    }
}
