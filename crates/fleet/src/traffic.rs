//! Open-loop cluster traffic models.
//!
//! A fleet campaign advances the whole cluster through discrete *epochs*
//! (think: one control-plane planning interval each). The traffic model
//! is open-loop — demand is a pure function of the epoch index, never of
//! simulated outcomes — so every server's trajectory is a pure function
//! of `(spec, server)` and shards can be simulated in any order, on any
//! worker, with byte-identical results.
//!
//! All three models are integer arithmetic only: no floating-point trig,
//! no RNG on the demand path, nothing whose rounding could differ
//! between builds.

use serde::{Deserialize, Serialize};

/// Cores (threads) one two-socket server can absorb.
pub use ags_core::cluster::CORES_PER_SERVER;

/// The shape of cluster demand over a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Day/night load: a triangle wave over a 24-epoch period between
    /// ~20 % and ~90 % of cluster capacity.
    Diurnal,
    /// Quiet baseline (~15 %) with a sudden spike to ~95 % one third of
    /// the way in, decaying geometrically back to the baseline.
    FlashCrowd,
    /// Steady ~60 % demand while servers drain in rolling waves for
    /// maintenance; drained servers take no load, so the survivors
    /// absorb it.
    RollingDeploy,
}

/// Epochs per diurnal period (one "day").
const DIURNAL_PERIOD: usize = 24;
/// How many consecutive epochs one rolling-deploy wave keeps a server
/// drained.
const DRAIN_EPOCHS: usize = 2;
/// Fraction of the fleet drained per rolling-deploy wave (1/8).
const DRAIN_SHARE: usize = 8;

impl TrafficModel {
    /// Stable CLI/config label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TrafficModel::Diurnal => "diurnal",
            TrafficModel::FlashCrowd => "flash-crowd",
            TrafficModel::RollingDeploy => "rolling-deploy",
        }
    }

    /// Parses a CLI label.
    #[must_use]
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "diurnal" => Some(TrafficModel::Diurnal),
            "flash-crowd" | "flash" => Some(TrafficModel::FlashCrowd),
            "rolling-deploy" | "deploy" => Some(TrafficModel::RollingDeploy),
            _ => None,
        }
    }

    /// Every model, in presentation order.
    #[must_use]
    pub fn all() -> [TrafficModel; 3] {
        [
            TrafficModel::Diurnal,
            TrafficModel::FlashCrowd,
            TrafficModel::RollingDeploy,
        ]
    }

    /// Cluster-wide thread demand at `epoch` for a fleet of `servers`
    /// machines. Always within the non-draining capacity, so the
    /// consolidation-first mapper can place every thread.
    #[must_use]
    pub fn demand(&self, servers: usize, epoch: usize) -> usize {
        let capacity = servers * CORES_PER_SERVER;
        let percent = match self {
            TrafficModel::Diurnal => {
                // Triangle wave: 20 % at epoch 0, peaking at 90 % half a
                // period in, back to 20 %.
                let phase = epoch % DIURNAL_PERIOD;
                let half = DIURNAL_PERIOD / 2;
                let rise = if phase <= half {
                    phase
                } else {
                    DIURNAL_PERIOD - phase
                };
                20 + (90 - 20) * rise / half
            }
            TrafficModel::FlashCrowd => {
                // Baseline 15 %, spike to 95 %, geometric decay: each
                // epoch after the spike halves the excess over baseline.
                let spike = self.flash_crowd_spike_epoch();
                if epoch < spike {
                    15
                } else {
                    let age = epoch - spike;
                    let excess = (95 - 15) >> age.min(63);
                    15 + excess
                }
            }
            TrafficModel::RollingDeploy => 60,
        };
        // Demand never exceeds what the non-draining servers can hold.
        let available = (0..servers)
            .filter(|&s| !self.draining(servers, s, epoch))
            .count()
            * CORES_PER_SERVER;
        (capacity * percent / 100).min(available)
    }

    /// The contiguous range of servers drained at `epoch`, if any. Only
    /// the rolling-deploy model drains anything: wave `w` (epochs
    /// `w * DRAIN_EPOCHS ..`) drains the `w`-th eighth of the fleet,
    /// wrapping so long campaigns keep cycling maintenance. Contiguity is
    /// load-bearing for the mapper: a server's consolidation rank among
    /// non-draining peers is then a constant-time subtraction.
    #[must_use]
    pub fn drain_wave(&self, servers: usize, epoch: usize) -> std::ops::Range<usize> {
        if *self != TrafficModel::RollingDeploy || servers == 0 {
            return 0..0;
        }
        let wave = (epoch / DRAIN_EPOCHS) % DRAIN_SHARE;
        let wave_size = servers.div_ceil(DRAIN_SHARE);
        let start = (wave * wave_size).min(servers);
        start..(start + wave_size).min(servers)
    }

    /// Whether `server` is drained (taking no load) at `epoch`.
    #[must_use]
    pub fn draining(&self, servers: usize, server: usize, epoch: usize) -> bool {
        self.drain_wave(servers, epoch).contains(&server)
    }

    /// The epoch a flash crowd arrives at, for an `epochs`-long campaign
    /// rendered useful even when very short.
    fn flash_crowd_spike_epoch(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for model in TrafficModel::all() {
            assert_eq!(TrafficModel::parse(model.label()), Some(model));
        }
        assert_eq!(TrafficModel::parse("flash"), Some(TrafficModel::FlashCrowd));
        assert_eq!(TrafficModel::parse("tsunami"), None);
    }

    #[test]
    fn demand_stays_within_capacity() {
        for model in TrafficModel::all() {
            for servers in [1, 7, 64] {
                for epoch in 0..50 {
                    let available = (0..servers)
                        .filter(|&s| !model.draining(servers, s, epoch))
                        .count()
                        * CORES_PER_SERVER;
                    let d = model.demand(servers, epoch);
                    assert!(d <= available, "{model:?} s={servers} e={epoch}: {d}");
                }
            }
        }
    }

    #[test]
    fn diurnal_rises_then_falls() {
        let m = TrafficModel::Diurnal;
        let at = |e| m.demand(100, e);
        assert!(at(6) > at(0), "morning ramp");
        assert_eq!(at(12), 100 * CORES_PER_SERVER * 90 / 100, "peak at 90 %");
        assert!(at(12) > at(18), "evening decline");
        assert_eq!(at(0), at(24), "periodic");
    }

    #[test]
    fn flash_crowd_spikes_and_decays() {
        let m = TrafficModel::FlashCrowd;
        let at = |e| m.demand(100, e);
        assert_eq!(at(0), at(1), "flat baseline");
        assert!(at(2) > 4 * at(1), "spike");
        assert!(at(3) < at(2) && at(4) < at(3), "decay");
        assert_eq!(at(20), at(0), "back to baseline");
    }

    #[test]
    fn rolling_deploy_drains_in_disjoint_waves() {
        let m = TrafficModel::RollingDeploy;
        let servers = 64;
        // Every epoch drains exactly one eighth of the fleet.
        for epoch in 0..20 {
            let drained = (0..servers)
                .filter(|&s| m.draining(servers, s, epoch))
                .count();
            assert_eq!(drained, servers / 8, "epoch {epoch}");
        }
        // Across one full cycle, every server gets drained.
        let mut ever = vec![false; servers];
        for epoch in 0..16 {
            for (s, flag) in ever.iter_mut().enumerate() {
                *flag |= m.draining(servers, s, epoch);
            }
        }
        assert!(ever.iter().all(|&f| f));
        // Other models never drain.
        assert!(!TrafficModel::Diurnal.draining(servers, 0, 0));
    }
}
